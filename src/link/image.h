// The linked executable image: encoded bytes per segment, symbol table,
// entry point, region map, and the analyzer-facing annotations (loop bounds
// and access hints) translated from positional to absolute addresses.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "link/region_map.h"

namespace spmwcet::link {

/// A linked symbol (function or global).
struct Symbol {
  std::string name;
  uint32_t addr = 0;
  uint32_t size = 0; ///< bytes (function: code + pool)
  bool is_function = false;
  uint32_t elem_bytes = 4; ///< globals: element width
  bool read_only = false;
  uint32_t count = 1; ///< globals: element count
};

/// A contiguous byte range loaded at a fixed address.
struct Segment {
  uint32_t base = 0;
  std::vector<uint8_t> bytes;
};

/// The executable, as both the simulator's load input and the WCET
/// analyzer's subject (the analyzer decodes instructions straight from the
/// segment bytes, exactly like aiT works on the final binary).
class Image {
public:
  std::vector<Segment> segments;
  uint32_t entry = 0;      ///< address of the start stub
  uint32_t initial_sp = 0; ///< top of stack
  RegionMap regions;
  std::vector<Symbol> symbols;

  /// Loop-bound annotations: address of the loop-header instruction ->
  /// maximum back-edge traversals per loop entry.
  std::map<uint32_t, int64_t> loop_bounds;

  /// Flow facts: loop-header address -> maximum summed back-edge
  /// traversals per invocation of the containing function (triangular
  /// nests; absent = no cap beyond loop_bounds).
  std::map<uint32_t, int64_t> loop_totals;

  /// Access hints: address of a load/store instruction -> name of the
  /// global symbol it accesses (the paper's automated array-address
  /// annotations).
  std::map<uint32_t, std::string> access_hints;

  const Symbol* find_symbol(const std::string& name) const;
  /// Symbol whose [addr, addr+size) contains `addr`, or nullptr.
  const Symbol* symbol_at(uint32_t addr) const;

  /// Byte accessors used by the analyzer and the loader. Throw
  /// SimulationError when the address is not inside any segment.
  uint8_t read8(uint32_t addr) const;
  uint16_t read16(uint32_t addr) const;
  uint32_t read32(uint32_t addr) const;

  /// True if `addr` is within a loaded segment.
  bool contains(uint32_t addr) const;

private:
  const Segment* segment_of(uint32_t addr, uint32_t bytes) const;
};

} // namespace spmwcet::link
