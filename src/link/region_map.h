// Memory-region map: the machine-readable equivalent of the aiT annotation
// file shown in Figure 2 of the paper. Every address the program may touch
// belongs to exactly one region with a memory class (main memory or
// scratchpad) and a descriptive kind; the simulator and the WCET analyzer
// derive access latencies from the class and the access width via
// isa::MemTiming.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "isa/timing.h"

namespace spmwcet::link {

/// What a region holds; informs the human-readable dump and lets tests
/// reason about layout. Latency depends only on mem_class() + access width.
enum class RegionKind : uint8_t {
  MainCode,    ///< 16-bit instructions in main memory
  LiteralPool, ///< 32-bit constants embedded in the code region
  MainData,    ///< global variables in main memory
  Stack,       ///< call stack (always main memory)
  SpmCode,     ///< instructions placed on the scratchpad
  SpmData,     ///< globals placed on the scratchpad
};

constexpr isa::MemClass mem_class(RegionKind k) {
  return (k == RegionKind::SpmCode || k == RegionKind::SpmData)
             ? isa::MemClass::Scratchpad
             : isa::MemClass::MainMemory;
}

/// Half-open address range [lo, hi).
struct Region {
  uint32_t lo = 0;
  uint32_t hi = 0;
  RegionKind kind = RegionKind::MainData;
  /// Owning symbol (function or global) when applicable, "" otherwise.
  std::string symbol;
  /// Natural element width in bytes (for the annotation dump only).
  uint32_t elem_bytes = 4;
};

/// Sorted, non-overlapping set of regions with O(log n) classification.
class RegionMap {
public:
  /// Adds a region; ranges must not overlap (checked on finalize()).
  void add(Region r);

  /// Sorts and validates. Must be called before lookups.
  void finalize();

  /// Region containing `addr`, or nullptr.
  const Region* find(uint32_t addr) const;

  /// Memory class of `addr`; throws SimulationError for unmapped addresses.
  isa::MemClass classify(uint32_t addr) const;

  /// True if any region of class `cls` overlaps the inclusive range
  /// [lo, hi]. Used to bound the cost of accesses with address ranges.
  bool intersects_class(uint32_t lo, uint32_t hi, isa::MemClass cls) const;

  const std::vector<Region>& regions() const { return regions_; }

  /// Renders the paper's Figure-2 style annotation file: one MEMORY-AREA
  /// line per region with its access timing per the Table-1 model.
  void dump_annotations(std::ostream& os) const;

private:
  std::vector<Region> regions_;
  bool finalized_ = false;
};

const char* to_string(RegionKind k);

} // namespace spmwcet::link
