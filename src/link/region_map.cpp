#include "link/region_map.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "support/diag.h"

namespace spmwcet::link {

void RegionMap::add(Region r) {
  SPMWCET_CHECK_MSG(r.lo < r.hi, "empty region " + r.symbol);
  regions_.push_back(std::move(r));
  finalized_ = false;
}

void RegionMap::finalize() {
  std::sort(regions_.begin(), regions_.end(),
            [](const Region& a, const Region& b) { return a.lo < b.lo; });
  for (std::size_t i = 1; i < regions_.size(); ++i)
    SPMWCET_CHECK_MSG(regions_[i - 1].hi <= regions_[i].lo,
                      "overlapping regions at " +
                          std::to_string(regions_[i].lo));
  finalized_ = true;
}

const Region* RegionMap::find(uint32_t addr) const {
  SPMWCET_CHECK_MSG(finalized_, "RegionMap::finalize() not called");
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), addr,
      [](uint32_t a, const Region& r) { return a < r.lo; });
  if (it == regions_.begin()) return nullptr;
  --it;
  return addr < it->hi ? &*it : nullptr;
}

isa::MemClass RegionMap::classify(uint32_t addr) const {
  const Region* r = find(addr);
  if (r == nullptr)
    throw SimulationError("access to unmapped address " +
                          std::to_string(addr));
  return mem_class(r->kind);
}

bool RegionMap::intersects_class(uint32_t lo, uint32_t hi,
                                 isa::MemClass cls) const {
  SPMWCET_CHECK_MSG(finalized_, "RegionMap::finalize() not called");
  for (const Region& r : regions_) {
    if (r.lo > hi) break;
    if (r.hi <= lo) continue;
    if (mem_class(r.kind) == cls) return true;
  }
  return false;
}

void RegionMap::dump_annotations(std::ostream& os) const {
  os << "# Memory-area annotations (cycles per access; paper Fig. 2 format)\n";
  bool spm_banner = false, main_banner = false;
  for (const Region& r : regions_) {
    const bool spm = mem_class(r.kind) == isa::MemClass::Scratchpad;
    if (spm && !spm_banner) {
      os << "# Scratchpad\n";
      spm_banner = true;
    }
    if (!spm && !main_banner) {
      os << "# Main memory regions\n";
      main_banner = true;
    }
    const uint32_t cycles =
        spm ? isa::MemTiming::scratchpad()
            : isa::MemTiming::main_memory(r.elem_bytes);
    os << "MEMORY-AREA: 0x" << std::hex << std::setw(6) << std::setfill('0')
       << r.lo << " .. 0x" << std::setw(6) << r.hi - 1 << std::dec
       << std::setfill(' ') << "  " << cycles << " cycle"
       << (cycles == 1 ? " " : "s") << "  " << to_string(r.kind);
    if (!r.symbol.empty()) os << "  (" << r.symbol << ")";
    os << "\n";
  }
}

const char* to_string(RegionKind k) {
  switch (k) {
    case RegionKind::MainCode: return "READ-ONLY CODE-ONLY";
    case RegionKind::LiteralPool: return "READ-ONLY DATA-ONLY (literal pool)";
    case RegionKind::MainData: return "READ-WRITE DATA-ONLY";
    case RegionKind::Stack: return "READ-WRITE DATA-ONLY (stack)";
    case RegionKind::SpmCode: return "READ-ONLY CODE-ONLY (spm)";
    case RegionKind::SpmData: return "READ-WRITE DATA-ONLY (spm)";
  }
  return "?";
}

} // namespace spmwcet::link
