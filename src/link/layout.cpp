#include "link/layout.h"

#include <algorithm>

#include "isa/encode.h"
#include "support/bitops.h"
#include "support/diag.h"

namespace spmwcet::link {

using isa::Cond;
using isa::Instr;
using isa::Op;
using minic::ObjFunction;
using minic::ObjInstr;

namespace {

/// A relaxed, size-stable function body plus derived layout facts.
struct LaidOutFunction {
  ObjFunction fn;                 // after relaxation
  std::vector<uint32_t> item_off; // byte offset of each item
  uint32_t code_bytes = 0;        // instructions only
  uint32_t pool_off = 0;          // aligned offset of the literal pool
  uint32_t total_bytes = 0;       // code + pool
  uint32_t base = 0;              // absolute address, set later
};

uint32_t item_bytes(const ObjInstr& it) {
  return it.ins.op == Op::BL_HI ? 4 : 2;
}

void recompute_offsets(LaidOutFunction& lf) {
  lf.item_off.assign(lf.fn.code.size() + 1, 0);
  uint32_t off = 0;
  for (std::size_t i = 0; i < lf.fn.code.size(); ++i) {
    lf.item_off[i] = off;
    off += item_bytes(lf.fn.code[i]);
  }
  lf.item_off[lf.fn.code.size()] = off;
  lf.code_bytes = off;
  lf.pool_off = align_up(off, 4);
  lf.total_bytes =
      lf.pool_off + 4 * static_cast<uint32_t>(lf.fn.literals.size());
}

uint32_t label_offset(const LaidOutFunction& lf, int label) {
  const uint32_t pos = lf.fn.label_pos.at(static_cast<std::size_t>(label));
  SPMWCET_CHECK_MSG(pos != UINT32_MAX, "unbound label in " + lf.fn.name);
  return lf.item_off[pos];
}

/// Replaces out-of-range BCCs with a BCC(!cond) over an unconditional B
/// until every branch encodes. Iterates because insertions move code.
void relax(LaidOutFunction& lf) {
  bool changed = true;
  while (changed) {
    changed = false;
    recompute_offsets(lf);
    for (std::size_t i = 0; i < lf.fn.code.size(); ++i) {
      ObjInstr& it = lf.fn.code[i];
      if (it.ins.op != Op::BCC) continue;
      const int32_t soff =
          isa::branch_offset(lf.item_off[i], label_offset(lf, it.label));
      if (fits_signed(soff, 8)) continue;

      // Rewrite: bcc cond, L  =>  bcc !cond, skip ; b L ; skip:
      const int target = it.label;
      const int skip = lf.fn.new_label();
      it.ins.sub =
          static_cast<uint8_t>(isa::negate(static_cast<Cond>(it.ins.sub)));
      it.label = skip;

      ObjInstr uncond;
      uncond.ins = Instr{.op = Op::B};
      uncond.label = target;
      lf.fn.code.insert(lf.fn.code.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                        uncond);

      // Shift every positional reference beyond the insertion point.
      for (auto& pos : lf.fn.label_pos)
        if (pos != UINT32_MAX && pos > i) ++pos;
      lf.fn.label_pos[static_cast<std::size_t>(skip)] =
          static_cast<uint32_t>(i) + 2;
      for (auto& lm : lf.fn.loops)
        if (lm.header > i) ++lm.header;

      changed = true;
      break; // offsets are stale; restart the scan
    }
  }
  // Unconditional branches cannot be relaxed further; verify they encode.
  for (std::size_t i = 0; i < lf.fn.code.size(); ++i) {
    const ObjInstr& it = lf.fn.code[i];
    if (it.ins.op == Op::B && it.label >= 0) {
      const int32_t soff =
          isa::branch_offset(lf.item_off[i], label_offset(lf, it.label));
      if (!fits_signed(soff, 11))
        throw ProgramError("link: function " + lf.fn.name +
                           " too large: B out of 11-bit range");
    }
  }
}

LaidOutFunction lay_out(const ObjFunction& fn) {
  LaidOutFunction lf;
  lf.fn = fn;
  relax(lf);
  recompute_offsets(lf);
  return lf;
}

void append16(std::vector<uint8_t>& bytes, uint16_t v) {
  bytes.push_back(static_cast<uint8_t>(v & 0xff));
  bytes.push_back(static_cast<uint8_t>(v >> 8));
}

void append32(std::vector<uint8_t>& bytes, uint32_t v) {
  append16(bytes, static_cast<uint16_t>(v & 0xffff));
  append16(bytes, static_cast<uint16_t>(v >> 16));
}

} // namespace

ObjectSizes measure(const minic::ObjModule& mod) {
  ObjectSizes sizes;
  for (const auto& fn : mod.functions)
    sizes.function_bytes[fn.name] = lay_out(fn).total_bytes;
  for (const auto& g : mod.globals) sizes.global_bytes[g.name] = g.size_bytes();
  return sizes;
}

Image link_program(const minic::ObjModule& mod, const LinkOptions& opts,
                   const SpmAssignment& spm) {
  SPMWCET_CHECK(opts.code_base % 4 == 0 && opts.data_base % 4 == 0 &&
                opts.spm_base % 4 == 0);
  for (const auto& name : spm.functions)
    if (mod.find_function(name) == nullptr)
      throw ProgramError("link: SPM assignment names unknown function " + name);
  for (const auto& name : spm.globals) {
    bool found = false;
    for (const auto& g : mod.globals) found = found || g.name == name;
    if (!found)
      throw ProgramError("link: SPM assignment names unknown global " + name);
  }
  if (mod.find_function(mod.entry) == nullptr)
    throw ProgramError("link: entry function '" + mod.entry + "' not defined");

  // ---- relax and measure every function ----------------------------------
  std::vector<LaidOutFunction> funcs;
  funcs.reserve(mod.functions.size());
  for (const auto& fn : mod.functions) funcs.push_back(lay_out(fn));

  // ---- assign addresses ---------------------------------------------------
  Image img;
  const uint32_t stub_bytes = 6; // bl entry ; halt
  uint32_t main_cursor = opts.code_base + stub_bytes;
  uint32_t spm_cursor = opts.spm_base;

  auto in_spm_fn = [&](const std::string& n) {
    return spm.functions.count(n) != 0;
  };

  for (auto& lf : funcs) {
    uint32_t& cursor = in_spm_fn(lf.fn.name) ? spm_cursor : main_cursor;
    cursor = align_up(cursor, 4);
    lf.base = cursor;
    cursor += lf.total_bytes;
  }

  std::map<std::string, uint32_t> global_addr;
  uint32_t data_cursor = opts.data_base;
  for (const auto& g : mod.globals) {
    uint32_t& cursor = spm.globals.count(g.name) ? spm_cursor : data_cursor;
    cursor = align_up(cursor, std::max(4u, 1u));
    global_addr[g.name] = cursor;
    cursor += g.size_bytes();
  }

  if (main_cursor > opts.data_base)
    throw ProgramError("link: code overflows into the data base");
  if (data_cursor > opts.stack_top - opts.stack_reserve)
    throw ProgramError("link: data overflows into the stack region");
  if (spm_cursor > opts.spm_base + opts.spm_size)
    throw ProgramError("link: scratchpad capacity exceeded (" +
                       std::to_string(spm_cursor - opts.spm_base) + " > " +
                       std::to_string(opts.spm_size) + " bytes)");

  auto func_addr = [&](const std::string& name) -> uint32_t {
    for (const auto& lf : funcs)
      if (lf.fn.name == name) return lf.base;
    throw ProgramError("link: call to undefined function " + name);
  };

  // ---- encode -------------------------------------------------------------
  // One segment per contiguous area: main code, main data, spm.
  Segment main_code{opts.code_base, {}};
  {
    // start stub: bl <entry> ; halt
    Instr hi, lo;
    isa::encode_bl(
        isa::branch_offset(opts.code_base, func_addr(mod.entry)), hi, lo);
    append16(main_code.bytes, isa::encode(hi));
    append16(main_code.bytes, isa::encode(lo));
    append16(main_code.bytes,
             isa::encode(Instr{.op = Op::SYS,
                               .sub = static_cast<uint8_t>(isa::SysFn::HALT)}));
  }

  Segment spm_seg{opts.spm_base, {}};

  auto encode_function = [&](const LaidOutFunction& lf, Segment& seg) {
    // padding up to the function base
    const uint32_t start_off = lf.base - seg.base;
    SPMWCET_CHECK(seg.bytes.size() <= start_off);
    seg.bytes.resize(start_off, 0);

    for (std::size_t i = 0; i < lf.fn.code.size(); ++i) {
      const ObjInstr& it = lf.fn.code[i];
      const uint32_t iaddr = lf.base + lf.item_off[i];
      Instr ins = it.ins;
      if (ins.op == Op::BL_HI) {
        Instr hi, lo;
        isa::encode_bl(isa::branch_offset(iaddr, func_addr(it.callee)), hi, lo);
        append16(seg.bytes, isa::encode(hi));
        append16(seg.bytes, isa::encode(lo));
        continue;
      }
      if (it.label >= 0) {
        SPMWCET_CHECK(ins.op == Op::B || ins.op == Op::BCC);
        ins.imm = isa::branch_offset(
            iaddr, lf.base + label_offset(lf, it.label));
      }
      if (it.literal >= 0) {
        const uint32_t lit_addr = lf.base + lf.pool_off +
                                  4 * static_cast<uint32_t>(it.literal);
        const uint32_t base = isa::lit_base(iaddr);
        SPMWCET_CHECK(lit_addr >= base);
        const uint32_t delta = (lit_addr - base) / 4;
        if (delta > 255)
          throw ProgramError("link: function " + lf.fn.name +
                             " too large for literal-pool addressing");
        ins.imm = static_cast<int32_t>(delta);
      }
      append16(seg.bytes, isa::encode(ins));
    }
    // pool
    const uint32_t pad_to = lf.base + lf.pool_off - seg.base;
    seg.bytes.resize(pad_to, 0);
    for (const auto& lit : lf.fn.literals) {
      uint32_t v;
      if (lit.is_symbol) {
        auto it = global_addr.find(lit.symbol);
        if (it != global_addr.end()) {
          v = it->second + lit.addend;
        } else {
          v = func_addr(lit.symbol) + lit.addend;
        }
      } else {
        v = static_cast<uint32_t>(lit.value);
      }
      append32(seg.bytes, v);
    }
  };

  for (const auto& lf : funcs)
    encode_function(lf, in_spm_fn(lf.fn.name) ? spm_seg : main_code);

  // ---- data segments ------------------------------------------------------
  Segment main_data{opts.data_base, {}};
  auto encode_global = [&](const minic::Global& g, Segment& seg) {
    const uint32_t start_off = global_addr[g.name] - seg.base;
    SPMWCET_CHECK(seg.bytes.size() <= start_off);
    seg.bytes.resize(start_off, 0);
    const uint32_t esz = minic::elem_size(g.type);
    for (uint32_t i = 0; i < g.count; ++i) {
      const int64_t v = i < g.init.size() ? g.init[i] : 0;
      const auto u = static_cast<uint32_t>(v);
      if (esz == 1) {
        seg.bytes.push_back(static_cast<uint8_t>(u));
      } else if (esz == 2) {
        append16(seg.bytes, static_cast<uint16_t>(u));
      } else {
        append32(seg.bytes, u);
      }
    }
  };
  for (const auto& g : mod.globals)
    encode_global(g, spm.globals.count(g.name) ? spm_seg : main_data);

  // ---- symbols, regions, annotations --------------------------------------
  img.entry = opts.code_base;
  img.initial_sp = opts.stack_top;

  img.symbols.push_back(Symbol{.name = "_start",
                               .addr = opts.code_base,
                               .size = stub_bytes,
                               .is_function = true});
  img.regions.add(Region{.lo = opts.code_base,
                         .hi = opts.code_base + stub_bytes,
                         .kind = RegionKind::MainCode,
                         .symbol = "_start",
                         .elem_bytes = 2});

  for (const auto& lf : funcs) {
    const bool on_spm = in_spm_fn(lf.fn.name);
    img.symbols.push_back(Symbol{.name = lf.fn.name,
                                 .addr = lf.base,
                                 .size = lf.total_bytes,
                                 .is_function = true});
    // The code region ends at the last instruction; alignment padding
    // before the literal pool belongs to neither (it is never accessed).
    img.regions.add(Region{
        .lo = lf.base,
        .hi = lf.base + lf.code_bytes,
        .kind = on_spm ? RegionKind::SpmCode : RegionKind::MainCode,
        .symbol = lf.fn.name,
        .elem_bytes = 2});
    if (!lf.fn.literals.empty())
      img.regions.add(Region{
          .lo = lf.base + lf.pool_off,
          .hi = lf.base + lf.total_bytes,
          .kind = on_spm ? RegionKind::SpmData : RegionKind::LiteralPool,
          .symbol = lf.fn.name + ".pool",
          .elem_bytes = 4});

    for (const auto& lm : lf.fn.loops) {
      const uint32_t addr = lf.base + lf.item_off[lm.header];
      auto [it, inserted] = img.loop_bounds.emplace(addr, lm.bound);
      if (!inserted) it->second = std::max(it->second, lm.bound);
      if (lm.total >= 0) {
        auto [tt, tins] = img.loop_totals.emplace(addr, lm.total);
        if (!tins) tt->second = std::max(tt->second, lm.total);
      }
    }
    for (std::size_t i = 0; i < lf.fn.code.size(); ++i) {
      const ObjInstr& it = lf.fn.code[i];
      if (!it.access_symbol.empty())
        img.access_hints[lf.base + lf.item_off[i]] = it.access_symbol;
    }
  }

  for (const auto& g : mod.globals) {
    const bool on_spm = spm.globals.count(g.name) != 0;
    img.symbols.push_back(Symbol{.name = g.name,
                                 .addr = global_addr[g.name],
                                 .size = g.size_bytes(),
                                 .is_function = false,
                                 .elem_bytes = minic::elem_size(g.type),
                                 .read_only = g.read_only,
                                 .count = g.count});
    img.regions.add(
        Region{.lo = global_addr[g.name],
               .hi = global_addr[g.name] + g.size_bytes(),
               .kind = on_spm ? RegionKind::SpmData : RegionKind::MainData,
               .symbol = g.name,
               .elem_bytes = minic::elem_size(g.type)});
  }

  img.regions.add(Region{.lo = opts.stack_top - opts.stack_reserve,
                         .hi = opts.stack_top,
                         .kind = RegionKind::Stack,
                         .symbol = "stack",
                         .elem_bytes = 4});
  img.regions.finalize();

  img.segments.push_back(std::move(main_code));
  if (!main_data.bytes.empty()) img.segments.push_back(std::move(main_data));
  if (!spm_seg.bytes.empty()) img.segments.push_back(std::move(spm_seg));
  // The stack segment is writable zeroed memory provided by the simulator.

  return img;
}

} // namespace spmwcet::link
