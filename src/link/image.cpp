#include "link/image.h"

#include "support/diag.h"

namespace spmwcet::link {

const Symbol* Image::find_symbol(const std::string& name) const {
  for (const auto& s : symbols)
    if (s.name == name) return &s;
  return nullptr;
}

const Symbol* Image::symbol_at(uint32_t addr) const {
  for (const auto& s : symbols)
    if (addr >= s.addr && addr < s.addr + s.size) return &s;
  return nullptr;
}

const Segment* Image::segment_of(uint32_t addr, uint32_t bytes) const {
  for (const auto& seg : segments) {
    if (addr >= seg.base && addr + bytes <= seg.base + seg.bytes.size())
      return &seg;
  }
  return nullptr;
}

bool Image::contains(uint32_t addr) const {
  return segment_of(addr, 1) != nullptr;
}

uint8_t Image::read8(uint32_t addr) const {
  const Segment* s = segment_of(addr, 1);
  if (s == nullptr)
    throw SimulationError("image read outside segments at " +
                          std::to_string(addr));
  return s->bytes[addr - s->base];
}

uint16_t Image::read16(uint32_t addr) const {
  const Segment* s = segment_of(addr, 2);
  if (s == nullptr)
    throw SimulationError("image read outside segments at " +
                          std::to_string(addr));
  const std::size_t off = addr - s->base;
  return static_cast<uint16_t>(s->bytes[off] |
                               (static_cast<uint16_t>(s->bytes[off + 1]) << 8));
}

uint32_t Image::read32(uint32_t addr) const {
  const Segment* s = segment_of(addr, 4);
  if (s == nullptr)
    throw SimulationError("image read outside segments at " +
                          std::to_string(addr));
  const std::size_t off = addr - s->base;
  return static_cast<uint32_t>(s->bytes[off]) |
         (static_cast<uint32_t>(s->bytes[off + 1]) << 8) |
         (static_cast<uint32_t>(s->bytes[off + 2]) << 16) |
         (static_cast<uint32_t>(s->bytes[off + 3]) << 24);
}

} // namespace spmwcet::link
