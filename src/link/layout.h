// The linker: places functions and globals into main memory and/or the
// scratchpad, relaxes out-of-range conditional branches, lays out literal
// pools, encodes everything to bytes, and emits the region map plus the
// WCET annotations (loop bounds, access hints) at absolute addresses.
//
// Scratchpad allocation is a pure link decision (SpmAssignment), exactly as
// in the paper: the compiler output is identical, only object placement
// changes, and with it every access latency.
#pragma once

#include <map>
#include <set>
#include <string>

#include "link/image.h"
#include "minic/obj.h"

namespace spmwcet::link {

/// Address-space shape. Defaults model a small ARM7 board: main memory at
/// zero (code, data, stack), scratchpad at 2 MiB (within BL's +/-4 MiB
/// span of the main code region, like a real TCM base address would be).
struct LinkOptions {
  uint32_t code_base = 0x00000100;
  uint32_t data_base = 0x00040000;
  uint32_t stack_top = 0x00080000;
  uint32_t stack_reserve = 0x00004000;
  uint32_t main_size = 0x00100000;
  uint32_t spm_base = 0x00200000;
  uint32_t spm_size = 0; ///< bytes; 0 = no scratchpad present
};

/// Which memory objects live on the scratchpad.
struct SpmAssignment {
  std::set<std::string> functions;
  std::set<std::string> globals;
};

/// Exact post-layout sizes of every allocatable memory object (function
/// code + literal pool, global data), used by the knapsack allocator.
struct ObjectSizes {
  std::map<std::string, uint32_t> function_bytes;
  std::map<std::string, uint32_t> global_bytes;
};

/// Links `mod` into an executable image.
/// Throws ProgramError on unresolved symbols, capacity overflow, or
/// un-relaxable branches.
Image link_program(const minic::ObjModule& mod, const LinkOptions& opts = {},
                   const SpmAssignment& spm = {});

/// Computes object sizes without producing an image.
ObjectSizes measure(const minic::ObjModule& mod);

} // namespace spmwcet::link
