#include "program/decoded_image.h"

#include "isa/decode.h"
#include "sim/memory_system.h" // kRegionMergeGapBytes: the shared merge rule
#include "support/diag.h"

namespace spmwcet::program {

namespace {

/// The halfword a fetch at `addr` observes: segment bytes where loaded,
/// zero elsewhere (alignment padding inside a mapped region is
/// zero-initialized backing storage).
uint16_t image_halfword(const link::Image& img, uint32_t addr) {
  const uint16_t lo = img.contains(addr) ? img.read8(addr) : 0;
  const uint16_t hi = img.contains(addr + 1) ? img.read8(addr + 1) : 0;
  return static_cast<uint16_t>(lo | (hi << 8));
}

bool is_code(link::RegionKind k) {
  return k == link::RegionKind::MainCode || k == link::RegionKind::SpmCode;
}

} // namespace

DecodedImage::DecodedImage(const link::Image& img) {
  // Merge same-class code regions separated by small gaps (literal pools,
  // alignment padding) into one span per code area — in practice one span
  // for main-memory code and one for scratchpad code. Gap halfwords stay
  // invalid so consumers fall back to the image (pool reads, trap paths).
  for (const link::Region& r : img.regions.regions()) {
    if (!is_code(r.kind)) continue;
    const isa::MemClass cls = link::mem_class(r.kind);
    if (spans_.empty() || cls != spans_.back().cls ||
        r.lo - (spans_.back().lo + spans_.back().len) >
            sim::kRegionMergeGapBytes) {
      spans_.push_back(Span{r.lo & ~1u, 0, cls, {}, {}});
    }
    Span& s = spans_.back();
    s.len = r.hi - s.lo;
    s.ops.resize((s.len + 1) / 2);
    s.valid.resize((s.len + 1) / 2, 0);
    for (uint32_t addr = r.lo & ~1u; addr + 2 <= r.hi; addr += 2) {
      const uint32_t i = (addr - s.lo) >> 1;
      s.ops[i] = isa::decode(image_halfword(img, addr));
      s.valid[i] = 1;
    }
  }
}

const isa::Instr& DecodedImage::instr_at(uint32_t addr) const {
  const isa::Instr* ins = find(addr);
  if (ins == nullptr)
    throw ProgramError("decode: address " + std::to_string(addr) +
                       " is not a decodable code halfword");
  return *ins;
}

} // namespace spmwcet::program
