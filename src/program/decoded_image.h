// The shared decode front end: every halfword of an image's code regions
// (MainCode/SpmCode) decoded exactly once into flat per-span instruction
// tables. Both consumers of decoded code build on this one table instead of
// maintaining their own decoder loops:
//   * sim::CodeTable copies the spans and annotates each op with its
//     profile slot (and keeps its own mutable copy so self-modifying
//     stores can re-decode);
//   * the WCET analyzer's CFG reconstruction reads function instruction
//     streams through instr_at() instead of isa::decode(img.read16(...)).
//
// Span extraction mirrors the simulator's historical merge rule: adjacent
// same-class code regions separated by small gaps (literal pools, alignment
// padding) collapse into one span; gap halfwords are marked invalid so both
// consumers treat them exactly like the undecoded image (pool reads, traps).
#pragma once

#include <cstdint>
#include <vector>

#include "isa/instruction.h"
#include "isa/timing.h"
#include "link/image.h"

namespace spmwcet::program {

class DecodedImage {
public:
  /// Decodes all code halfwords of `img`. The image is only read during
  /// construction; the table owns every decoded value.
  explicit DecodedImage(const link::Image& img);

  struct Span {
    uint32_t lo = 0;  ///< halfword-aligned span base
    uint32_t len = 0; ///< bytes covered; ops has (len+1)/2 entries
    isa::MemClass cls = isa::MemClass::MainMemory;
    std::vector<isa::Instr> ops;
    /// valid[i] != 0 iff ops[i] lies inside a code region (not a merged
    /// gap such as a literal pool or alignment padding).
    std::vector<uint8_t> valid;
  };

  const std::vector<Span>& spans() const { return spans_; }

  /// Decoded instruction at a halfword-aligned code address, or nullptr
  /// for misaligned addresses, gaps, and anything outside the spans.
  const isa::Instr* find(uint32_t addr) const {
    for (const Span& s : spans_) {
      const uint32_t off = addr - s.lo; // wraps for addr < lo
      if (off < s.len) {
        if ((addr & 1u) != 0 || !s.valid[off >> 1]) return nullptr;
        return &s.ops[off >> 1];
      }
    }
    return nullptr;
  }

  /// Decoded instruction at `addr`; throws ProgramError when the address
  /// is not a decodable code halfword (the analyzer's contract: function
  /// extents always lie inside code regions).
  const isa::Instr& instr_at(uint32_t addr) const;

private:
  std::vector<Span> spans_;
};

} // namespace spmwcet::program
