// Reference interpreter for MiniC: executes the AST directly with the same
// integer semantics the T16 pipeline implements (32-bit wrapping
// arithmetic, element-width truncation on global stores, sign extension on
// loads, short-circuit logic). Used as the differential-testing oracle for
// the compiler + linker + simulator, and handy for users who want to check
// a program's functional behaviour without building an image.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "minic/ast.h"

namespace spmwcet::minic {

class Interpreter {
public:
  explicit Interpreter(const ProgramDef& prog);

  /// Executes `main` (which must exist and take no parameters).
  /// Throws Error on runtime faults (out-of-range index, division by zero,
  /// step overrun) — conditions the simulator would trap on as well.
  void run();

  /// Reads global `name[index]` with the element type's signedness.
  int64_t read_global(const std::string& name, uint32_t index = 0) const;

  /// Overwrites a global element (before run()).
  void write_global(const std::string& name, uint32_t index, int64_t value);

  /// Total statements executed (rough work measure; used by tests to keep
  /// fuzzed programs small).
  uint64_t steps() const { return steps_; }

private:
  struct GlobalState {
    ElemType type;
    bool read_only;
    std::vector<uint32_t> raw; // truncated to elem width
  };

  using Frame = std::map<std::string, uint32_t>;

  uint32_t call_function(const Function& fn, const std::vector<uint32_t>& args);
  void exec(const Stmt& s, Frame& frame, const Function& fn, bool& returned,
            uint32_t& ret_value);
  uint32_t eval(const Expr& e, Frame& frame);

  uint32_t load_elem(const GlobalState& g, uint32_t index) const;
  void store_elem(GlobalState& g, uint32_t index, uint32_t value);

  const ProgramDef& prog_;
  std::map<std::string, GlobalState> globals_;
  uint64_t steps_ = 0;
  int call_depth_ = 0;
};

} // namespace spmwcet::minic
