#include "minic/ast.h"

#include "support/diag.h"

namespace spmwcet::minic {

Function& ProgramDef::add_function(std::string name,
                                   std::vector<std::string> params,
                                   bool returns_value) {
  SPMWCET_CHECK_MSG(params.size() <= 4, "at most 4 parameters (r0..r3)");
  SPMWCET_CHECK_MSG(find_function(name) == nullptr,
                    "duplicate function " + name);
  Function f;
  f.name = std::move(name);
  f.params = std::move(params);
  f.returns_value = returns_value;
  functions.push_back(std::move(f));
  return functions.back();
}

Global& ProgramDef::add_global(Global g) {
  SPMWCET_CHECK_MSG(find_global(g.name) == nullptr,
                    "duplicate global " + g.name);
  SPMWCET_CHECK_MSG(g.count >= 1, "global count must be >= 1");
  SPMWCET_CHECK_MSG(g.init.size() <= g.count, "too many initializers");
  globals.push_back(std::move(g));
  return globals.back();
}

const Function* ProgramDef::find_function(const std::string& name) const {
  for (const auto& f : functions)
    if (f.name == name) return &f;
  return nullptr;
}

const Global* ProgramDef::find_global(const std::string& name) const {
  for (const auto& g : globals)
    if (g.name == name) return &g;
  return nullptr;
}

ExprPtr cst(int64_t v) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Const;
  e->value = v;
  return e;
}

ExprPtr var(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Var;
  e->name = std::move(name);
  return e;
}

ExprPtr gld(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::GlobalScalar;
  e->name = std::move(name);
  return e;
}

ExprPtr idx(std::string array, ExprPtr i) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Index;
  e->name = std::move(array);
  e->kids.push_back(std::move(i));
  return e;
}

ExprPtr unary(UnOp op, ExprPtr x) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Unary;
  e->un = op;
  e->kids.push_back(std::move(x));
  return e;
}

ExprPtr binary(BinOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Binary;
  e->bin = op;
  e->kids.push_back(std::move(l));
  e->kids.push_back(std::move(r));
  return e;
}

ExprPtr call(std::string fn, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Call;
  e->name = std::move(fn);
  e->kids = std::move(args);
  return e;
}

StmtPtr assign(std::string name, ExprPtr value) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::Assign;
  s->name = std::move(name);
  s->exprs.push_back(std::move(value));
  return s;
}

StmtPtr gassign(std::string name, ExprPtr value) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::AssignGlobal;
  s->name = std::move(name);
  s->exprs.push_back(std::move(value));
  return s;
}

StmtPtr store(std::string array, ExprPtr index, ExprPtr value) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::Store;
  s->name = std::move(array);
  s->exprs.push_back(std::move(index));
  s->exprs.push_back(std::move(value));
  return s;
}

StmtPtr expr_stmt(ExprPtr e) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::ExprStmt;
  s->exprs.push_back(std::move(e));
  return s;
}

StmtPtr if_(ExprPtr cond, StmtPtr then_branch, StmtPtr else_branch) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::If;
  s->exprs.push_back(std::move(cond));
  s->body.push_back(std::move(then_branch));
  if (else_branch) s->body.push_back(std::move(else_branch));
  return s;
}

StmtPtr while_(ExprPtr cond, int64_t bound, StmtPtr body,
               std::optional<int64_t> total) {
  SPMWCET_CHECK_MSG(bound >= 0, "loop bound must be non-negative");
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::While;
  s->exprs.push_back(std::move(cond));
  s->body.push_back(std::move(body));
  s->bound = bound;
  s->total = total;
  return s;
}

StmtPtr for_(std::string v, ExprPtr init, ExprPtr limit, int64_t step,
             StmtPtr body, std::optional<int64_t> bound,
             std::optional<int64_t> total) {
  SPMWCET_CHECK_MSG(step != 0, "for step must be nonzero");
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::For;
  s->name = std::move(v);
  s->exprs.push_back(std::move(init));
  s->exprs.push_back(std::move(limit));
  s->step = step;
  s->body.push_back(std::move(body));
  s->bound = bound;
  s->total = total;
  return s;
}

StmtPtr ret(ExprPtr e) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::Return;
  if (e) s->exprs.push_back(std::move(e));
  return s;
}

StmtPtr block(std::vector<StmtPtr> stmts) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::Block;
  s->body = std::move(stmts);
  return s;
}

ExprPtr clone(const Expr& e) {
  auto c = std::make_unique<Expr>();
  c->kind = e.kind;
  c->value = e.value;
  c->name = e.name;
  c->un = e.un;
  c->bin = e.bin;
  for (const auto& k : e.kids) c->kids.push_back(clone(*k));
  return c;
}

} // namespace spmwcet::minic
