// MiniC -> T16 code generation.
//
// Calling convention (THUMB-flavoured):
//   * arguments in r0..r3, result in r0 (caller-saved scratch);
//   * r4..r7 are callee-saved and serve as the expression evaluation stack;
//     deeper expressions spill to dedicated frame slots;
//   * every local lives in a stack slot ([sp + slot*4]); the stack resides
//     in main memory, matching the paper's setup where only functions and
//     global data are candidates for scratchpad allocation;
//   * prologue: push {r4-r7, lr}; sub sp, #frame
//     epilogue: add sp, #frame; pop {r4-r7, pc}.
//
// The generator also emits the analyzer-facing metadata: a LoopMark per
// loop (header position + iteration bound) and an access-symbol hint on
// every global load/store.
#pragma once

#include "minic/ast.h"
#include "minic/check.h"
#include "minic/obj.h"

namespace spmwcet::minic {

/// Compiles a checked program to an object module.
/// Runs `check` internally; throws ProgramError/AnnotationError on invalid
/// input.
ObjModule compile(const ProgramDef& prog);

} // namespace spmwcet::minic
