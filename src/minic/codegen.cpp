#include "minic/codegen.h"

#include <algorithm>

#include "support/diag.h"

namespace spmwcet::minic {

using isa::AluOp;
using isa::Cond;
using isa::Instr;
using isa::Op;
using isa::Reg;
using isa::ShiftOp;

namespace {

// Scratch registers (caller-saved, never live across sub-evaluation).
constexpr Reg kScr0 = 0, kScr1 = 1, kScr2 = 2, kScr3 = 3;
// Evaluation-stack registers (callee-saved).
constexpr Reg kEvalBase = 4;
constexpr int kEvalRegs = 4;

class FuncGen {
public:
  FuncGen(const ProgramDef& prog, const Function& fn, const FuncInfo& info)
      : prog_(prog), fn_(fn), info_(info) {}

  ObjFunction run() {
    out_.name = fn_.name;
    emit_prologue();
    gen_stmt(*fn_.body);
    // Fall-off-the-end: value functions yield 0, like C's implicit return
    // would be UB -- we define it for determinism.
    if (fn_.returns_value) emit(Instr{.op = Op::MOVI, .rd = 0, .imm = 0});
    out_.bind_label(epilogue_);
    emit_epilogue();
    patch_frame_size();
    return std::move(out_);
  }

private:
  // ---- emission ----------------------------------------------------------

  ObjInstr& emit(Instr ins) {
    ObjInstr oi;
    oi.ins = ins;
    out_.code.push_back(oi);
    return out_.code.back();
  }

  void emit_branch(int label) {
    ObjInstr oi;
    oi.ins = Instr{.op = Op::B};
    oi.label = label;
    out_.code.push_back(oi);
  }

  void emit_cond_branch(Cond c, int label) {
    ObjInstr oi;
    oi.ins = Instr{.op = Op::BCC, .sub = static_cast<uint8_t>(c)};
    oi.label = label;
    out_.code.push_back(oi);
  }

  void emit_call(const std::string& callee) {
    ObjInstr oi;
    oi.ins = Instr{.op = Op::BL_HI};
    oi.callee = callee;
    out_.code.push_back(oi);
  }

  /// Loads a 32-bit value from the function's literal pool.
  void emit_lit_load(Reg rd, Literal lit) {
    ObjInstr oi;
    oi.ins = Instr{.op = Op::LDR_LIT, .rd = rd};
    oi.literal = out_.add_literal(lit);
    out_.code.push_back(oi);
  }

  void emit_prologue() {
    // push {r4-r7, lr}
    emit(Instr{.op = Op::PUSH, .sub = 1, .imm = 0xF0});
    frame_adjsp_down_ = out_.code.size();
    emit(Instr{.op = Op::ADJSP, .sub = 1, .imm = 0}); // patched
    for (std::size_t i = 0; i < fn_.params.size(); ++i)
      emit(Instr{.op = Op::STR_SP,
                 .rd = static_cast<Reg>(i),
                 .imm = static_cast<int32_t>(i)});
    epilogue_ = out_.new_label();
  }

  void emit_epilogue() {
    frame_adjsp_up_ = out_.code.size();
    emit(Instr{.op = Op::ADJSP, .sub = 0, .imm = 0}); // patched
    emit(Instr{.op = Op::POP, .sub = 1, .imm = 0xF0});
  }

  void patch_frame_size() {
    const int frame = static_cast<int>(info_.vars.size()) + max_spills_;
    SPMWCET_CHECK_MSG(frame <= 127, "frame too large for ADJSP imm7");
    out_.code[frame_adjsp_down_].ins.imm = frame;
    out_.code[frame_adjsp_up_].ins.imm = frame;
  }

  // ---- evaluation stack ---------------------------------------------------

  bool top_in_reg(int pos) const { return pos < kEvalRegs; }
  Reg eval_reg(int pos) const { return static_cast<Reg>(kEvalBase + pos); }
  int spill_slot(int pos) const {
    return static_cast<int>(info_.vars.size()) + (pos - kEvalRegs);
  }

  /// Register the value at stack position `pos` can be read from; spilled
  /// values are loaded into `scratch`.
  Reg read_pos(int pos, Reg scratch) {
    if (top_in_reg(pos)) return eval_reg(pos);
    emit(Instr{.op = Op::LDR_SP, .rd = scratch, .imm = spill_slot(pos)});
    return scratch;
  }

  /// Pops the top of the evaluation stack into a readable register.
  Reg pop(Reg scratch) {
    SPMWCET_CHECK(depth_ > 0);
    --depth_;
    return read_pos(depth_, scratch);
  }

  /// After computing a value in `src`, publishes it as the new stack top.
  /// (Callers must have already accounted for the push via push_slot().)
  void publish(int pos, Reg src) {
    if (top_in_reg(pos)) {
      if (eval_reg(pos) != src)
        emit(Instr{.op = Op::ALU,
                   .sub = static_cast<uint8_t>(AluOp::MOV),
                   .rd = eval_reg(pos),
                   .rm = src});
    } else {
      emit(Instr{.op = Op::STR_SP, .rd = src, .imm = spill_slot(pos)});
    }
  }

  /// Reserves the next stack position and returns it.
  int push_slot() {
    const int pos = depth_++;
    if (!top_in_reg(pos))
      max_spills_ = std::max(max_spills_, pos - kEvalRegs + 1);
    return pos;
  }

  /// Target register for computing the value of stack position `pos`:
  /// the eval register itself, or a scratch to be published afterwards.
  Reg target_reg(int pos, Reg scratch) const {
    return top_in_reg(pos) ? eval_reg(pos) : scratch;
  }

  // ---- constants and addresses -------------------------------------------

  void load_const(Reg rd, int64_t v) {
    if (v >= 0 && v <= 255) {
      emit(Instr{.op = Op::MOVI, .rd = rd, .imm = static_cast<int32_t>(v)});
    } else if (v < 0 && -v <= 255) {
      emit(Instr{.op = Op::MOVI, .rd = rd, .imm = static_cast<int32_t>(-v)});
      emit(Instr{.op = Op::ALU,
                 .sub = static_cast<uint8_t>(AluOp::NEG),
                 .rd = rd,
                 .rm = rd});
    } else {
      Literal lit;
      lit.is_symbol = false;
      lit.value = static_cast<int32_t>(v);
      emit_lit_load(rd, lit);
    }
  }

  void load_symbol_addr(Reg rd, const std::string& sym) {
    Literal lit;
    lit.is_symbol = true;
    lit.symbol = sym;
    emit_lit_load(rd, lit);
  }

  // ---- expression evaluation ----------------------------------------------

  /// Evaluates `e` and pushes its value onto the evaluation stack.
  void eval(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::Const: {
        const int pos = push_slot();
        const Reg t = target_reg(pos, kScr2);
        load_const(t, e.value);
        if (!top_in_reg(pos)) publish(pos, t);
        return;
      }
      case Expr::Kind::Var: {
        const int slot = info_.slot_of(e.name);
        SPMWCET_CHECK(slot >= 0);
        const int pos = push_slot();
        const Reg t = target_reg(pos, kScr2);
        emit(Instr{.op = Op::LDR_SP, .rd = t, .imm = slot});
        if (!top_in_reg(pos)) publish(pos, t);
        return;
      }
      case Expr::Kind::GlobalScalar: {
        const Global* g = prog_.find_global(e.name);
        const int pos = push_slot();
        const Reg t = target_reg(pos, kScr2);
        load_symbol_addr(kScr3, e.name);
        ObjInstr& oi = emit(load_op_for(g->type, t, kScr3, 0));
        oi.access_symbol = e.name;
        if (!top_in_reg(pos)) publish(pos, t);
        return;
      }
      case Expr::Kind::Index: {
        gen_index_load(e);
        return;
      }
      case Expr::Kind::Unary: {
        eval(*e.kids[0]);
        gen_unary(e.un);
        return;
      }
      case Expr::Kind::Binary: {
        gen_binary(e);
        return;
      }
      case Expr::Kind::Call: {
        gen_call(e);
        return;
      }
    }
    SPMWCET_CHECK(false);
  }

  static Instr load_op_for(ElemType t, Reg rd, Reg rn, int32_t elem_index) {
    switch (t) {
      case ElemType::I32:
        return Instr{.op = Op::LDR, .rd = rd, .rn = rn, .imm = elem_index};
      case ElemType::I16:
        return Instr{.op = Op::LDRSH, .rd = rd, .rn = rn, .imm = elem_index};
      case ElemType::U16:
        return Instr{.op = Op::LDRH, .rd = rd, .rn = rn, .imm = elem_index};
      case ElemType::I8:
        return Instr{.op = Op::LDRSB, .rd = rd, .rn = rn, .imm = elem_index};
      case ElemType::U8:
        return Instr{.op = Op::LDRB, .rd = rd, .rn = rn, .imm = elem_index};
    }
    SPMWCET_CHECK(false);
  }

  static Instr store_op_for(ElemType t, Reg rd, Reg rn, int32_t elem_index) {
    switch (t) {
      case ElemType::I32:
        return Instr{.op = Op::STR, .rd = rd, .rn = rn, .imm = elem_index};
      case ElemType::I16:
      case ElemType::U16:
        return Instr{.op = Op::STRH, .rd = rd, .rn = rn, .imm = elem_index};
      case ElemType::I8:
      case ElemType::U8:
        return Instr{.op = Op::STRB, .rd = rd, .rn = rn, .imm = elem_index};
    }
    SPMWCET_CHECK(false);
  }

  static isa::LdxOp ldx_for(ElemType t) {
    switch (t) {
      case ElemType::I32: return isa::LdxOp::W;
      case ElemType::I16: return isa::LdxOp::SH;
      case ElemType::U16: return isa::LdxOp::H;
      case ElemType::I8: return isa::LdxOp::SH; // unreachable; see below
      case ElemType::U8: return isa::LdxOp::B;
    }
    SPMWCET_CHECK(false);
  }

  void gen_index_load(const Expr& e) {
    const Global* g = prog_.find_global(e.name);
    const uint32_t esz = elem_size(g->type);
    const Expr& ix = *e.kids[0];
    // Constant index within the immediate-offset range: direct addressing.
    if (ix.kind == Expr::Kind::Const && ix.value >= 0 && ix.value <= 31) {
      const int pos = push_slot();
      const Reg t = target_reg(pos, kScr2);
      load_symbol_addr(kScr3, e.name);
      ObjInstr& oi = emit(
          load_op_for(g->type, t, kScr3, static_cast<int32_t>(ix.value)));
      oi.access_symbol = e.name;
      if (!top_in_reg(pos)) publish(pos, t);
      return;
    }
    // General case: scaled register offset.
    eval(ix);
    const Reg ri = pop(kScr3);
    if (esz > 1)
      emit(Instr{.op = Op::SHIFTI,
                 .sub = static_cast<uint8_t>(ShiftOp::LSL),
                 .rd = ri,
                 .imm = esz == 2 ? 1 : 2});
    load_symbol_addr(kScr2, e.name);
    const int pos = push_slot();
    const Reg t = target_reg(pos, kScr2); // may alias the base; rd==rn is fine
    if (g->type == ElemType::I8) {
      // No LDRSB register-offset form: load unsigned then sign-extend.
      ObjInstr& oi = emit(Instr{.op = Op::LDX,
                                .sub = static_cast<uint8_t>(isa::LdxOp::B),
                                .rd = t,
                                .rn = kScr2,
                                .rm = ri});
      oi.access_symbol = e.name;
      emit(Instr{.op = Op::SHIFTI,
                 .sub = static_cast<uint8_t>(ShiftOp::LSL),
                 .rd = t,
                 .imm = 24});
      emit(Instr{.op = Op::SHIFTI,
                 .sub = static_cast<uint8_t>(ShiftOp::ASR),
                 .rd = t,
                 .imm = 24});
    } else {
      ObjInstr& oi = emit(Instr{.op = Op::LDX,
                                .sub = static_cast<uint8_t>(ldx_for(g->type)),
                                .rd = t,
                                .rn = kScr2,
                                .rm = ri});
      oi.access_symbol = e.name;
    }
    if (!top_in_reg(pos)) publish(pos, t);
  }

  void gen_unary(UnOp op) {
    const Reg v = pop(kScr2);
    const int pos = push_slot();
    const Reg t = target_reg(pos, kScr2);
    switch (op) {
      case UnOp::Neg:
        emit(Instr{.op = Op::ALU,
                   .sub = static_cast<uint8_t>(AluOp::NEG),
                   .rd = t,
                   .rm = v});
        break;
      case UnOp::BitNot:
        emit(Instr{.op = Op::ALU,
                   .sub = static_cast<uint8_t>(AluOp::MVN),
                   .rd = t,
                   .rm = v});
        break;
      case UnOp::Not: {
        const int l_end = out_.new_label();
        emit(Instr{.op = Op::CMPI, .rd = v, .imm = 0});
        emit(Instr{.op = Op::MOVI, .rd = t, .imm = 1});
        emit_cond_branch(Cond::EQ, l_end);
        emit(Instr{.op = Op::MOVI, .rd = t, .imm = 0});
        out_.bind_label(l_end);
        break;
      }
    }
    if (!top_in_reg(pos)) publish(pos, t);
  }

  static std::optional<AluOp> simple_alu(BinOp op) {
    switch (op) {
      case BinOp::Add: return AluOp::ADD;
      case BinOp::Sub: return AluOp::SUB;
      case BinOp::Mul: return AluOp::MUL;
      case BinOp::SDiv: return AluOp::SDIV;
      case BinOp::And: return AluOp::AND;
      case BinOp::Or: return AluOp::ORR;
      case BinOp::Xor: return AluOp::EOR;
      case BinOp::Shl: return AluOp::LSL;
      case BinOp::AShr: return AluOp::ASR;
      case BinOp::LShr: return AluOp::LSR;
      default: return std::nullopt;
    }
  }

  static std::optional<Cond> cmp_cond(BinOp op) {
    switch (op) {
      case BinOp::Lt: return Cond::LT;
      case BinOp::Le: return Cond::LE;
      case BinOp::Gt: return Cond::GT;
      case BinOp::Ge: return Cond::GE;
      case BinOp::Eq: return Cond::EQ;
      case BinOp::Ne: return Cond::NE;
      default: return std::nullopt;
    }
  }

  void gen_binary(const Expr& e) {
    const BinOp op = e.bin;
    if (op == BinOp::LAnd || op == BinOp::LOr) {
      // Materialize short-circuit logic as 0/1.
      const int pos = push_slot();
      const Reg t = target_reg(pos, kScr2);
      const int l_true = out_.new_label();
      const int l_false = out_.new_label();
      const int l_end = out_.new_label();
      gen_cond(e, l_true, l_false, l_true);
      out_.bind_label(l_true);
      emit(Instr{.op = Op::MOVI, .rd = t, .imm = 1});
      emit_branch(l_end);
      out_.bind_label(l_false);
      emit(Instr{.op = Op::MOVI, .rd = t, .imm = 0});
      out_.bind_label(l_end);
      if (!top_in_reg(pos)) publish(pos, t);
      return;
    }

    // Shift by constant: use the immediate form.
    const Expr& rhs = *e.kids[1];
    if ((op == BinOp::Shl || op == BinOp::AShr || op == BinOp::LShr) &&
        rhs.kind == Expr::Kind::Const && rhs.value >= 0 && rhs.value <= 31) {
      eval(*e.kids[0]);
      const Reg v = pop(kScr2);
      const int pos = push_slot();
      const Reg t = target_reg(pos, kScr2);
      const ShiftOp so = op == BinOp::Shl
                             ? ShiftOp::LSL
                             : (op == BinOp::AShr ? ShiftOp::ASR : ShiftOp::LSR);
      if (t != v)
        emit(Instr{.op = Op::ALU,
                   .sub = static_cast<uint8_t>(AluOp::MOV),
                   .rd = t,
                   .rm = v});
      emit(Instr{.op = Op::SHIFTI,
                 .sub = static_cast<uint8_t>(so),
                 .rd = t,
                 .imm = static_cast<int32_t>(rhs.value)});
      if (!top_in_reg(pos)) publish(pos, t);
      return;
    }

    eval(*e.kids[0]);
    eval(*e.kids[1]);
    const Reg rr = pop(kScr3);
    const Reg rl = pop(kScr2);
    const int pos = push_slot();
    const Reg t = target_reg(pos, kScr2); // aliases rl when rl is an eval reg

    if (const auto alu = simple_alu(op)) {
      if (op == BinOp::Add) {
        emit(Instr{.op = Op::ADD3, .rd = t, .rn = rl, .rm = rr});
      } else if (op == BinOp::Sub) {
        emit(Instr{.op = Op::SUB3, .rd = t, .rn = rl, .rm = rr});
      } else {
        if (t != rl)
          emit(Instr{.op = Op::ALU,
                     .sub = static_cast<uint8_t>(AluOp::MOV),
                     .rd = t,
                     .rm = rl});
        emit(Instr{.op = Op::ALU,
                   .sub = static_cast<uint8_t>(*alu),
                   .rd = t,
                   .rm = rr});
      }
      if (!top_in_reg(pos)) publish(pos, t);
      return;
    }

    const auto cond = cmp_cond(op);
    SPMWCET_CHECK(cond.has_value());
    const int l_end = out_.new_label();
    emit(Instr{.op = Op::ALU,
               .sub = static_cast<uint8_t>(AluOp::CMP),
               .rd = rl,
               .rm = rr});
    emit(Instr{.op = Op::MOVI, .rd = t, .imm = 1});
    emit_cond_branch(*cond, l_end);
    emit(Instr{.op = Op::MOVI, .rd = t, .imm = 0});
    out_.bind_label(l_end);
    if (!top_in_reg(pos)) publish(pos, t);
  }

  void gen_call(const Expr& e) {
    SPMWCET_CHECK(e.kids.size() <= 4);
    for (const auto& a : e.kids) eval(*a);
    // Move arguments into r0..r3, last argument first (it is on top).
    for (int i = static_cast<int>(e.kids.size()) - 1; i >= 0; --i) {
      SPMWCET_CHECK(depth_ > 0);
      --depth_;
      const int pos = depth_;
      const Reg dst = static_cast<Reg>(i);
      if (top_in_reg(pos)) {
        emit(Instr{.op = Op::ALU,
                   .sub = static_cast<uint8_t>(AluOp::MOV),
                   .rd = dst,
                   .rm = eval_reg(pos)});
      } else {
        emit(Instr{.op = Op::LDR_SP, .rd = dst, .imm = spill_slot(pos)});
      }
    }
    emit_call(e.name);
    const int pos = push_slot();
    publish(pos, 0); // result in r0
  }

  // ---- conditions ---------------------------------------------------------

  /// Branches to `l_true`/`l_false` depending on `e`; `fall` names the label
  /// that will be bound immediately after, so its branch can be elided.
  void gen_cond(const Expr& e, int l_true, int l_false, int fall) {
    if (e.kind == Expr::Kind::Binary) {
      if (e.bin == BinOp::LAnd) {
        const int l_mid = out_.new_label();
        gen_cond(*e.kids[0], l_mid, l_false, l_mid);
        out_.bind_label(l_mid);
        gen_cond(*e.kids[1], l_true, l_false, fall);
        return;
      }
      if (e.bin == BinOp::LOr) {
        const int l_mid = out_.new_label();
        gen_cond(*e.kids[0], l_true, l_mid, l_mid);
        out_.bind_label(l_mid);
        gen_cond(*e.kids[1], l_true, l_false, fall);
        return;
      }
      if (const auto cond = cmp_cond(e.bin)) {
        eval(*e.kids[0]);
        eval(*e.kids[1]);
        const Reg rr = pop(kScr3);
        const Reg rl = pop(kScr2);
        emit(Instr{.op = Op::ALU,
                   .sub = static_cast<uint8_t>(AluOp::CMP),
                   .rd = rl,
                   .rm = rr});
        if (fall == l_false) {
          emit_cond_branch(*cond, l_true);
        } else if (fall == l_true) {
          emit_cond_branch(isa::negate(*cond), l_false);
        } else {
          emit_cond_branch(*cond, l_true);
          emit_branch(l_false);
        }
        return;
      }
    }
    if (e.kind == Expr::Kind::Unary && e.un == UnOp::Not) {
      gen_cond(*e.kids[0], l_false, l_true, fall);
      return;
    }
    // Generic truthiness test.
    eval(e);
    const Reg v = pop(kScr2);
    emit(Instr{.op = Op::CMPI, .rd = v, .imm = 0});
    if (fall == l_false) {
      emit_cond_branch(Cond::NE, l_true);
    } else if (fall == l_true) {
      emit_cond_branch(Cond::EQ, l_false);
    } else {
      emit_cond_branch(Cond::NE, l_true);
      emit_branch(l_false);
    }
  }

  // ---- statements ---------------------------------------------------------

  void store_to_var(const std::string& name) {
    const int slot = info_.slot_of(name);
    SPMWCET_CHECK(slot >= 0);
    const Reg v = pop(kScr2);
    emit(Instr{.op = Op::STR_SP, .rd = v, .imm = slot});
  }

  void gen_stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::Assign:
        eval(*s.exprs[0]);
        store_to_var(s.name);
        return;
      case Stmt::Kind::AssignGlobal: {
        const Global* g = prog_.find_global(s.name);
        eval(*s.exprs[0]);
        const Reg v = pop(kScr3);
        load_symbol_addr(kScr2, s.name);
        ObjInstr& oi = emit(store_op_for(g->type, v, kScr2, 0));
        oi.access_symbol = s.name;
        return;
      }
      case Stmt::Kind::Store:
        gen_store(s);
        return;
      case Stmt::Kind::ExprStmt:
        if (s.exprs[0]->kind == Expr::Kind::Call &&
            !prog_.find_function(s.exprs[0]->name)->returns_value) {
          // Void call: arguments only, no result push.
          const Expr& e = *s.exprs[0];
          for (const auto& a : e.kids) eval(*a);
          for (int i = static_cast<int>(e.kids.size()) - 1; i >= 0; --i) {
            --depth_;
            const int pos = depth_;
            const Reg dst = static_cast<Reg>(i);
            if (top_in_reg(pos))
              emit(Instr{.op = Op::ALU,
                         .sub = static_cast<uint8_t>(AluOp::MOV),
                         .rd = dst,
                         .rm = eval_reg(pos)});
            else
              emit(Instr{.op = Op::LDR_SP, .rd = dst, .imm = spill_slot(pos)});
          }
          emit_call(e.name);
        } else {
          eval(*s.exprs[0]);
          (void)pop(kScr2); // discard
        }
        return;
      case Stmt::Kind::If: {
        const int l_then = out_.new_label();
        const int l_end = out_.new_label();
        if (s.body.size() == 1) {
          gen_cond(*s.exprs[0], l_then, l_end, l_then);
          out_.bind_label(l_then);
          gen_stmt(*s.body[0]);
          out_.bind_label(l_end);
        } else {
          const int l_else = out_.new_label();
          gen_cond(*s.exprs[0], l_then, l_else, l_then);
          out_.bind_label(l_then);
          gen_stmt(*s.body[0]);
          emit_branch(l_end);
          out_.bind_label(l_else);
          gen_stmt(*s.body[1]);
          out_.bind_label(l_end);
        }
        return;
      }
      case Stmt::Kind::While: {
        const int l_header = out_.new_label();
        const int l_body = out_.new_label();
        const int l_exit = out_.new_label();
        out_.bind_label(l_header);
        out_.loops.push_back({static_cast<uint32_t>(out_.code.size()),
                              *s.bound, s.total.value_or(-1)});
        gen_cond(*s.exprs[0], l_body, l_exit, l_body);
        out_.bind_label(l_body);
        gen_stmt(*s.body[0]);
        emit_branch(l_header);
        out_.bind_label(l_exit);
        return;
      }
      case Stmt::Kind::For:
        gen_for(s);
        return;
      case Stmt::Kind::Return:
        if (!s.exprs.empty()) {
          eval(*s.exprs[0]);
          --depth_;
          const int pos = depth_;
          if (top_in_reg(pos)) {
            if (eval_reg(pos) != 0)
              emit(Instr{.op = Op::ALU,
                         .sub = static_cast<uint8_t>(AluOp::MOV),
                         .rd = 0,
                         .rm = eval_reg(pos)});
          } else {
            emit(Instr{.op = Op::LDR_SP, .rd = 0, .imm = spill_slot(pos)});
          }
        }
        emit_branch(epilogue_);
        return;
      case Stmt::Kind::Block:
        for (const auto& b : s.body) gen_stmt(*b);
        return;
    }
    SPMWCET_CHECK(false);
  }

  void gen_store(const Stmt& s) {
    const Global* g = prog_.find_global(s.name);
    const uint32_t esz = elem_size(g->type);
    const Expr& ix = *s.exprs[0];
    if (ix.kind == Expr::Kind::Const && ix.value >= 0 && ix.value <= 31) {
      eval(*s.exprs[1]);
      const Reg v = pop(kScr3);
      load_symbol_addr(kScr2, s.name);
      ObjInstr& oi = emit(
          store_op_for(g->type, v, kScr2, static_cast<int32_t>(ix.value)));
      oi.access_symbol = s.name;
      return;
    }
    eval(ix);
    eval(*s.exprs[1]);
    const Reg v = pop(kScr3);
    const Reg ri = pop(kScr2);
    if (esz > 1)
      emit(Instr{.op = Op::SHIFTI,
                 .sub = static_cast<uint8_t>(ShiftOp::LSL),
                 .rd = ri,
                 .imm = esz == 2 ? 1 : 2});
    load_symbol_addr(kScr1, s.name);
    const auto stx = esz == 4 ? isa::StxOp::W
                              : (esz == 2 ? isa::StxOp::H : isa::StxOp::B);
    ObjInstr& oi = emit(Instr{.op = Op::STX,
                              .sub = static_cast<uint8_t>(stx),
                              .rd = v,
                              .rn = kScr1,
                              .rm = ri});
    oi.access_symbol = s.name;
  }

  void gen_for(const Stmt& s) {
    const int64_t bound = for_bound(s);
    const int slot = info_.slot_of(s.name);
    SPMWCET_CHECK(slot >= 0);

    // init
    eval(*s.exprs[0]);
    store_to_var(s.name);

    const int l_header = out_.new_label();
    const int l_body = out_.new_label();
    const int l_exit = out_.new_label();
    out_.bind_label(l_header);
    out_.loops.push_back({static_cast<uint32_t>(out_.code.size()), bound,
                          s.total.value_or(-1)});

    // condition: var < limit (step > 0) or var > limit (step < 0)
    const auto cond_op = s.step > 0 ? BinOp::Lt : BinOp::Gt;
    auto cond = binary(cond_op, var(s.name), clone(*s.exprs[1]));
    gen_cond(*cond, l_body, l_exit, l_body);

    out_.bind_label(l_body);
    gen_stmt(*s.body[0]);

    // increment
    emit(Instr{.op = Op::LDR_SP, .rd = kScr2, .imm = slot});
    const int64_t st = s.step;
    if (st >= 0 && st <= 255) {
      emit(Instr{.op = Op::ADDI, .rd = kScr2, .imm = static_cast<int32_t>(st)});
    } else if (st < 0 && -st <= 255) {
      emit(
          Instr{.op = Op::SUBI, .rd = kScr2, .imm = static_cast<int32_t>(-st)});
    } else {
      load_const(kScr3, st);
      emit(Instr{.op = Op::ADD3, .rd = kScr2, .rn = kScr2, .rm = kScr3});
    }
    emit(Instr{.op = Op::STR_SP, .rd = kScr2, .imm = slot});
    emit_branch(l_header);
    out_.bind_label(l_exit);
  }

  const ProgramDef& prog_;
  const Function& fn_;
  const FuncInfo& info_;
  ObjFunction out_;
  int depth_ = 0;
  int max_spills_ = 0;
  int epilogue_ = -1;
  std::size_t frame_adjsp_down_ = 0;
  std::size_t frame_adjsp_up_ = 0;
};

} // namespace

int ObjFunction::add_literal(const Literal& lit) {
  for (std::size_t i = 0; i < literals.size(); ++i)
    if (literals[i] == lit) return static_cast<int>(i);
  literals.push_back(lit);
  return static_cast<int>(literals.size()) - 1;
}

const ObjFunction* ObjModule::find_function(const std::string& name) const {
  for (const auto& f : functions)
    if (f.name == name) return &f;
  return nullptr;
}

ObjModule compile(const ProgramDef& prog) {
  const CheckResult checked = check(prog);
  ObjModule mod;
  mod.globals = prog.globals;
  for (const auto& fn : prog.functions) {
    FuncGen gen(prog, fn, checked.functions.at(fn.name));
    mod.functions.push_back(gen.run());
  }
  return mod;
}

} // namespace spmwcet::minic
