// The object format produced by the MiniC code generator and consumed by
// the linker: T16 instructions with symbolic branch targets, literal-pool
// references, call targets, plus the metadata the WCET analyzer needs
// (loop bounds and array-access hints), still expressed positionally.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/instruction.h"
#include "minic/ast.h"

namespace spmwcet::minic {

/// A literal-pool entry: either a 32-bit constant or the address of a
/// symbol plus an addend (filled in at link time).
struct Literal {
  bool is_symbol = false;
  int64_t value = 0;   // constant case
  std::string symbol;  // symbol case
  uint32_t addend = 0;

  friend bool operator==(const Literal&, const Literal&) = default;
};

/// One positional item of a function body. The linker expands BL to its
/// halfword pair, resolves labels to offsets and literals to pool slots.
struct ObjInstr {
  isa::Instr ins;

  /// BCC/B: index into ObjFunction label space; resolved by the linker.
  int label = -1;
  /// BL: callee symbol.
  std::string callee;
  /// LDR_LIT / ADR: index into ObjFunction::literals.
  int literal = -1;
  /// Loads/stores to a known global: symbol whose address range bounds this
  /// access (the paper's automated array-access annotation).
  std::string access_symbol;
};

/// A loop-bound annotation: `header` is the positional index of the first
/// instruction of the loop header; `bound` is the maximum number of times
/// the loop's back edges may be taken per entry; `total`, when >= 0, caps
/// the summed back-edge executions per function invocation (flow fact for
/// triangular nests).
struct LoopMark {
  uint32_t header = 0;
  int64_t bound = 0;
  int64_t total = -1;
};

/// A compiled function before linking.
struct ObjFunction {
  std::string name;
  std::vector<ObjInstr> code;
  /// label id -> positional index into `code` of the labelled instruction
  /// (may equal code.size() for an end label).
  std::vector<uint32_t> label_pos;
  std::vector<Literal> literals;
  std::vector<LoopMark> loops;

  int new_label() {
    label_pos.push_back(UINT32_MAX);
    return static_cast<int>(label_pos.size()) - 1;
  }
  void bind_label(int label) {
    label_pos.at(static_cast<std::size_t>(label)) =
        static_cast<uint32_t>(code.size());
  }
  /// Adds a literal, deduplicating identical entries.
  int add_literal(const Literal& lit);
};

/// A compiled translation unit: functions plus global definitions carried
/// through from the AST (the linker lays them out).
struct ObjModule {
  std::vector<ObjFunction> functions;
  std::vector<Global> globals;
  std::string entry = "main";

  const ObjFunction* find_function(const std::string& name) const;
};

} // namespace spmwcet::minic
