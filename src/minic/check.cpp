#include "minic/check.h"

#include <functional>
#include <set>

#include "support/diag.h"

namespace spmwcet::minic {

namespace {

class Checker {
public:
  explicit Checker(const ProgramDef& prog) : prog_(prog) {}

  CheckResult run() {
    CheckResult result;
    for (const auto& f : prog_.functions) {
      SPMWCET_CHECK_MSG(f.body != nullptr, "function " + f.name + " has no body");
      fn_ = &f;
      info_ = FuncInfo{};
      assigned_.clear();
      for (const auto& p : f.params) declare(p);
      collect_vars(*f.body);
      check_stmt(*f.body);
      result.functions.emplace(f.name, info_);
    }
    return result;
  }

private:
  void declare(const std::string& name) {
    if (info_.slot_of(name) < 0) info_.vars.push_back(name);
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw ProgramError("minic: in function " + fn_->name + ": " + msg);
  }

  // First pass: every Assign/For target becomes a local (if not a param).
  void collect_vars(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::Assign:
      case Stmt::Kind::For:
        if (prog_.find_global(s.name) != nullptr)
          fail("local variable '" + s.name + "' shadows a global");
        declare(s.name);
        assigned_.insert(s.name);
        break;
      default:
        break;
    }
    for (const auto& k : s.body)
      if (k) collect_vars(*k);
  }

  void check_expr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::Const:
        break;
      case Expr::Kind::Var: {
        if (info_.slot_of(e.name) < 0)
          fail("use of undeclared variable '" + e.name + "'");
        const bool is_param =
            std::find(fn_->params.begin(), fn_->params.end(), e.name) !=
            fn_->params.end();
        if (!is_param && assigned_.find(e.name) == assigned_.end())
          fail("variable '" + e.name + "' is read but never assigned");
        break;
      }
      case Expr::Kind::GlobalScalar: {
        const Global* g = prog_.find_global(e.name);
        if (g == nullptr) fail("unknown global '" + e.name + "'");
        if (g->count != 1)
          fail("global array '" + e.name + "' used without index");
        break;
      }
      case Expr::Kind::Index: {
        const Global* g = prog_.find_global(e.name);
        if (g == nullptr) fail("unknown global array '" + e.name + "'");
        if (g->count == 1)
          fail("global scalar '" + e.name + "' used with index");
        break;
      }
      case Expr::Kind::Unary:
        break;
      case Expr::Kind::Binary:
        break;
      case Expr::Kind::Call: {
        const Function* callee = prog_.find_function(e.name);
        if (callee == nullptr) fail("call to unknown function '" + e.name + "'");
        if (callee->params.size() != e.kids.size())
          fail("call to '" + e.name + "' with " +
               std::to_string(e.kids.size()) + " args, expected " +
               std::to_string(callee->params.size()));
        break;
      }
    }
    for (const auto& k : e.kids) check_expr(*k);
  }

  // A call used as a value must return one.
  void check_value_expr(const Expr& e) {
    check_expr(e);
    std::function<void(const Expr&)> walk = [&](const Expr& x) {
      if (x.kind == Expr::Kind::Call) {
        const Function* callee = prog_.find_function(x.name);
        if (callee != nullptr && !callee->returns_value)
          fail("void function '" + x.name + "' used as a value");
      }
      for (const auto& k : x.kids) walk(*k);
    };
    walk(e);
  }

  void check_stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::Assign:
        // Writing a surrounding for-loop's induction variable would
        // invalidate the automatically emitted loop bound.
        if (active_loop_vars_.count(s.name))
          fail("assignment to loop variable '" + s.name +
               "' inside its loop body");
        check_value_expr(*s.exprs[0]);
        break;
      case Stmt::Kind::AssignGlobal: {
        const Global* g = prog_.find_global(s.name);
        if (g == nullptr) fail("assignment to unknown global '" + s.name + "'");
        if (g->count != 1) fail("global array '" + s.name + "' assigned without index");
        if (g->read_only) fail("assignment to read-only global '" + s.name + "'");
        check_value_expr(*s.exprs[0]);
        break;
      }
      case Stmt::Kind::Store: {
        const Global* g = prog_.find_global(s.name);
        if (g == nullptr) fail("store to unknown array '" + s.name + "'");
        if (g->count == 1) fail("store to scalar '" + s.name + "'");
        if (g->read_only) fail("store to read-only array '" + s.name + "'");
        check_value_expr(*s.exprs[0]);
        check_value_expr(*s.exprs[1]);
        break;
      }
      case Stmt::Kind::ExprStmt:
        check_expr(*s.exprs[0]);
        break;
      case Stmt::Kind::If:
        check_value_expr(*s.exprs[0]);
        for (const auto& b : s.body) check_stmt(*b);
        break;
      case Stmt::Kind::While:
        if (!s.bound.has_value())
          throw AnnotationError("minic: while loop in " + fn_->name +
                                " without bound");
        check_value_expr(*s.exprs[0]);
        check_stmt(*s.body[0]);
        break;
      case Stmt::Kind::For: {
        (void)for_bound(s); // throws if unavailable
        if (active_loop_vars_.count(s.name))
          fail("nested for loops reuse induction variable '" + s.name + "'");
        check_value_expr(*s.exprs[0]);
        check_value_expr(*s.exprs[1]);
        active_loop_vars_.insert(s.name);
        check_stmt(*s.body[0]);
        active_loop_vars_.erase(s.name);
        break;
      }
      case Stmt::Kind::Return:
        if (fn_->returns_value && s.exprs.empty())
          fail("return without value in value-returning function");
        if (!fn_->returns_value && !s.exprs.empty())
          fail("return with value in void function");
        if (!s.exprs.empty()) check_value_expr(*s.exprs[0]);
        break;
      case Stmt::Kind::Block:
        for (const auto& b : s.body) check_stmt(*b);
        break;
    }
  }

  const ProgramDef& prog_;
  const Function* fn_ = nullptr;
  FuncInfo info_;
  std::set<std::string> assigned_;
  std::set<std::string> active_loop_vars_;
};

} // namespace

CheckResult check(const ProgramDef& prog) { return Checker(prog).run(); }

int64_t for_bound(const Stmt& s) {
  SPMWCET_CHECK(s.kind == Stmt::Kind::For);
  if (s.bound.has_value()) return *s.bound;
  const Expr& init = *s.exprs[0];
  const Expr& limit = *s.exprs[1];
  if (init.kind == Expr::Kind::Const && limit.kind == Expr::Kind::Const) {
    if (s.step > 0) {
      // for (v = init; v < limit; v += step)
      const int64_t span = limit.value - init.value;
      if (span <= 0) return 0;
      return (span + s.step - 1) / s.step;
    }
    // for (v = init; v > limit; v += step), step < 0
    const int64_t span = init.value - limit.value;
    if (span <= 0) return 0;
    return (span + (-s.step) - 1) / (-s.step);
  }
  throw AnnotationError(
      "minic: for loop needs an explicit bound (non-constant range)");
}

} // namespace spmwcet::minic
