// MiniC: a small embedded-DSL language standing in for the C subset the
// paper's energy-optimizing compiler (encc) consumes.
//
// MiniC programs are built programmatically (factory functions below), type
// checked, and compiled to T16 objects. All scalar values are int32; global
// arrays may have 8/16/32-bit signed or unsigned elements, which is what
// produces the width-dependent main-memory timing the paper studies (16-bit
// instruction fetches and `short` arrays at 2 cycles, 32-bit literals and
// `int` arrays at 4 cycles).
//
// The front end mirrors the paper's automated annotation flow: counted
// `for_` loops with constant bounds emit loop-bound annotations themselves;
// `while_` loops carry an explicit bound; every array access records the
// accessed symbol so the analyzer knows its address range even when the
// index is data dependent.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace spmwcet::minic {

/// Element type of a global (scalars are always I32).
enum class ElemType : uint8_t { I8, U8, I16, U16, I32 };

/// Size in bytes of one element.
constexpr uint32_t elem_size(ElemType t) {
  switch (t) {
    case ElemType::I8:
    case ElemType::U8: return 1;
    case ElemType::I16:
    case ElemType::U16: return 2;
    case ElemType::I32: return 4;
  }
  return 4;
}

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinOp : uint8_t {
  Add, Sub, Mul, SDiv, And, Or, Xor, Shl, AShr, LShr,
  Lt, Le, Gt, Ge, Eq, Ne, // signed comparisons, value 0/1
  LAnd, LOr,              // short-circuit logical
};

enum class UnOp : uint8_t { Neg, BitNot, Not };

/// Expression node. `kind` selects which fields are meaningful.
struct Expr {
  enum class Kind : uint8_t {
    Const,        ///< value
    Var,          ///< name (local or parameter)
    GlobalScalar, ///< name (global with count == 1)
    Index,        ///< name (global array), kids[0] = index
    Unary,        ///< un, kids[0]
    Binary,       ///< bin, kids[0], kids[1]
    Call,         ///< name, kids = arguments
  };

  Kind kind;
  int64_t value = 0;
  std::string name;
  UnOp un = UnOp::Neg;
  BinOp bin = BinOp::Add;
  std::vector<ExprPtr> kids;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Statement node.
struct Stmt {
  enum class Kind : uint8_t {
    Assign,       ///< name = exprs[0] (local/param)
    AssignGlobal, ///< name = exprs[0] (global scalar)
    Store,        ///< name[exprs[0]] = exprs[1] (global array)
    ExprStmt,     ///< exprs[0] evaluated for effect (calls)
    If,           ///< exprs[0] cond; body[0] then; body[1] optional else
    While,        ///< exprs[0] cond; body[0]; bound = max iterations
    For,          ///< name = exprs[0]; name < exprs[1]; name += step
    Return,       ///< exprs[0] optional
    Block,        ///< body = statements
  };

  Kind kind;
  std::string name;
  std::vector<ExprPtr> exprs;
  std::vector<StmtPtr> body;
  /// Maximum number of body executions per loop entry. Mandatory for While;
  /// inferred for For when init/limit/step are constants.
  std::optional<int64_t> bound;
  /// Optional flow fact: maximum total body executions per *invocation* of
  /// the enclosing function (tightens triangular nests in the IPET).
  std::optional<int64_t> total;
  int64_t step = 1; // For only
};

/// A global scalar (count == 1) or array (count > 1).
struct Global {
  std::string name;
  ElemType type = ElemType::I32;
  uint32_t count = 1;
  /// Initial element values (size() <= count; remainder zero-filled).
  std::vector<int64_t> init = {};
  /// Read-only data can never be the target of Store/AssignGlobal.
  bool read_only = false;

  uint32_t size_bytes() const { return count * elem_size(type); }
};

/// A MiniC function: named parameters (passed in r0..r3, max 4), implicit
/// int32 locals (any assigned non-global name), single body block.
struct Function {
  std::string name;
  std::vector<std::string> params;
  bool returns_value = false;
  StmtPtr body;
};

/// A whole MiniC translation unit.
struct ProgramDef {
  std::vector<Global> globals;
  std::vector<Function> functions;

  Function& add_function(std::string name, std::vector<std::string> params,
                         bool returns_value);
  Global& add_global(Global g);

  const Function* find_function(const std::string& name) const;
  const Global* find_global(const std::string& name) const;
};

// ---------------------------------------------------------------------------
// Factory functions (the DSL surface).

ExprPtr cst(int64_t v);
ExprPtr var(std::string name);
ExprPtr gld(std::string name);               // global scalar load
ExprPtr idx(std::string array, ExprPtr i);   // array element load
ExprPtr unary(UnOp op, ExprPtr e);
ExprPtr binary(BinOp op, ExprPtr l, ExprPtr r);
ExprPtr call(std::string fn, std::vector<ExprPtr> args);

inline ExprPtr add(ExprPtr l, ExprPtr r) { return binary(BinOp::Add, std::move(l), std::move(r)); }
inline ExprPtr sub(ExprPtr l, ExprPtr r) { return binary(BinOp::Sub, std::move(l), std::move(r)); }
inline ExprPtr mul(ExprPtr l, ExprPtr r) { return binary(BinOp::Mul, std::move(l), std::move(r)); }
inline ExprPtr sdiv(ExprPtr l, ExprPtr r) { return binary(BinOp::SDiv, std::move(l), std::move(r)); }
inline ExprPtr band(ExprPtr l, ExprPtr r) { return binary(BinOp::And, std::move(l), std::move(r)); }
inline ExprPtr bor(ExprPtr l, ExprPtr r) { return binary(BinOp::Or, std::move(l), std::move(r)); }
inline ExprPtr bxor(ExprPtr l, ExprPtr r) { return binary(BinOp::Xor, std::move(l), std::move(r)); }
inline ExprPtr shl(ExprPtr l, ExprPtr r) { return binary(BinOp::Shl, std::move(l), std::move(r)); }
inline ExprPtr asr(ExprPtr l, ExprPtr r) { return binary(BinOp::AShr, std::move(l), std::move(r)); }
inline ExprPtr lsr(ExprPtr l, ExprPtr r) { return binary(BinOp::LShr, std::move(l), std::move(r)); }
inline ExprPtr lt(ExprPtr l, ExprPtr r) { return binary(BinOp::Lt, std::move(l), std::move(r)); }
inline ExprPtr le(ExprPtr l, ExprPtr r) { return binary(BinOp::Le, std::move(l), std::move(r)); }
inline ExprPtr gt(ExprPtr l, ExprPtr r) { return binary(BinOp::Gt, std::move(l), std::move(r)); }
inline ExprPtr ge(ExprPtr l, ExprPtr r) { return binary(BinOp::Ge, std::move(l), std::move(r)); }
inline ExprPtr eq(ExprPtr l, ExprPtr r) { return binary(BinOp::Eq, std::move(l), std::move(r)); }
inline ExprPtr ne(ExprPtr l, ExprPtr r) { return binary(BinOp::Ne, std::move(l), std::move(r)); }
inline ExprPtr land(ExprPtr l, ExprPtr r) { return binary(BinOp::LAnd, std::move(l), std::move(r)); }
inline ExprPtr lor(ExprPtr l, ExprPtr r) { return binary(BinOp::LOr, std::move(l), std::move(r)); }
inline ExprPtr neg(ExprPtr e) { return unary(UnOp::Neg, std::move(e)); }
inline ExprPtr bnot(ExprPtr e) { return unary(UnOp::BitNot, std::move(e)); }
inline ExprPtr lnot(ExprPtr e) { return unary(UnOp::Not, std::move(e)); }

StmtPtr assign(std::string name, ExprPtr value);
StmtPtr gassign(std::string name, ExprPtr value);
StmtPtr store(std::string array, ExprPtr index, ExprPtr value);
StmtPtr expr_stmt(ExprPtr e);
StmtPtr if_(ExprPtr cond, StmtPtr then_branch, StmtPtr else_branch = nullptr);
StmtPtr while_(ExprPtr cond, int64_t bound, StmtPtr body,
               std::optional<int64_t> total = std::nullopt);
/// for (v = init; v < limit; v += step) body
/// `bound` may be omitted when init/limit are constants and step > 0.
/// `total`, when given, caps the summed iterations per function invocation.
StmtPtr for_(std::string v, ExprPtr init, ExprPtr limit, int64_t step,
             StmtPtr body, std::optional<int64_t> bound = std::nullopt,
             std::optional<int64_t> total = std::nullopt);
StmtPtr ret(ExprPtr e = nullptr);
StmtPtr block(std::vector<StmtPtr> stmts);

/// Deep copy (the DSL consumes nodes; use clone to reuse a subtree).
ExprPtr clone(const Expr& e);

} // namespace spmwcet::minic
