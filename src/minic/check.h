// MiniC semantic checking: name resolution, arity, mutability, loop-bound
// availability. Produces the per-function local-variable layout consumed by
// the code generator.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "minic/ast.h"

namespace spmwcet::minic {

/// Frame layout facts for one function.
struct FuncInfo {
  /// All stack-resident int32 variables, parameters first. The slot index
  /// of a variable is its position here.
  std::vector<std::string> vars;

  int slot_of(const std::string& name) const {
    for (std::size_t i = 0; i < vars.size(); ++i)
      if (vars[i] == name) return static_cast<int>(i);
    return -1;
  }
};

struct CheckResult {
  std::map<std::string, FuncInfo> functions;
};

/// Validates `prog` and computes frame layouts.
/// Throws ProgramError on any violation.
CheckResult check(const ProgramDef& prog);

/// Computes the iteration bound of a For statement (explicit bound, or
/// derived from constant init/limit/step). Throws AnnotationError when no
/// bound can be established.
int64_t for_bound(const Stmt& s);

} // namespace spmwcet::minic
