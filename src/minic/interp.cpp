#include "minic/interp.h"

#include "support/diag.h"

namespace spmwcet::minic {

namespace {
constexpr uint64_t kMaxSteps = 50'000'000;
constexpr int kMaxDepth = 64;

int32_t as_signed(uint32_t v) { return static_cast<int32_t>(v); }
} // namespace

Interpreter::Interpreter(const ProgramDef& prog) : prog_(prog) {
  for (const Global& g : prog.globals) {
    GlobalState st;
    st.type = g.type;
    st.read_only = g.read_only;
    st.raw.assign(g.count, 0);
    for (std::size_t i = 0; i < g.init.size(); ++i)
      store_elem(st, static_cast<uint32_t>(i),
                 static_cast<uint32_t>(g.init[i]));
    globals_.emplace(g.name, std::move(st));
  }
}

uint32_t Interpreter::load_elem(const GlobalState& g, uint32_t index) const {
  if (index >= g.raw.size())
    throw Error("interp: index " + std::to_string(index) + " out of range");
  const uint32_t raw = g.raw[index];
  switch (g.type) {
    case ElemType::I8: return static_cast<uint32_t>(static_cast<int32_t>(
        static_cast<int8_t>(raw)));
    case ElemType::U8: return raw & 0xffu;
    case ElemType::I16: return static_cast<uint32_t>(static_cast<int32_t>(
        static_cast<int16_t>(raw)));
    case ElemType::U16: return raw & 0xffffu;
    case ElemType::I32: return raw;
  }
  SPMWCET_CHECK(false);
}

void Interpreter::store_elem(GlobalState& g, uint32_t index, uint32_t value) {
  if (index >= g.raw.size())
    throw Error("interp: index " + std::to_string(index) + " out of range");
  switch (elem_size(g.type)) {
    case 1: g.raw[index] = value & 0xffu; break;
    case 2: g.raw[index] = value & 0xffffu; break;
    default: g.raw[index] = value; break;
  }
}

void Interpreter::run() {
  const Function* main = prog_.find_function("main");
  if (main == nullptr || !main->params.empty())
    throw Error("interp: needs a parameterless main()");
  (void)call_function(*main, {});
}

uint32_t Interpreter::call_function(const Function& fn,
                                    const std::vector<uint32_t>& args) {
  if (++call_depth_ > kMaxDepth) throw Error("interp: call depth exceeded");
  Frame frame;
  SPMWCET_CHECK(args.size() == fn.params.size());
  for (std::size_t i = 0; i < args.size(); ++i) frame[fn.params[i]] = args[i];
  bool returned = false;
  uint32_t ret = 0;
  exec(*fn.body, frame, fn, returned, ret);
  --call_depth_;
  return ret;
}

uint32_t Interpreter::eval(const Expr& e, Frame& frame) {
  switch (e.kind) {
    case Expr::Kind::Const:
      return static_cast<uint32_t>(e.value);
    case Expr::Kind::Var: {
      const auto it = frame.find(e.name);
      if (it == frame.end())
        throw Error("interp: read of unset variable " + e.name);
      return it->second;
    }
    case Expr::Kind::GlobalScalar:
      return load_elem(globals_.at(e.name), 0);
    case Expr::Kind::Index: {
      const uint32_t index = eval(*e.kids[0], frame);
      return load_elem(globals_.at(e.name), index);
    }
    case Expr::Kind::Unary: {
      if (e.un == UnOp::Not) return eval(*e.kids[0], frame) == 0 ? 1u : 0u;
      const uint32_t v = eval(*e.kids[0], frame);
      return e.un == UnOp::Neg ? 0u - v : ~v;
    }
    case Expr::Kind::Binary: {
      const BinOp op = e.bin;
      if (op == BinOp::LAnd) {
        if (eval(*e.kids[0], frame) == 0) return 0;
        return eval(*e.kids[1], frame) != 0 ? 1u : 0u;
      }
      if (op == BinOp::LOr) {
        if (eval(*e.kids[0], frame) != 0) return 1;
        return eval(*e.kids[1], frame) != 0 ? 1u : 0u;
      }
      const uint32_t a = eval(*e.kids[0], frame);
      const uint32_t b = eval(*e.kids[1], frame);
      switch (op) {
        case BinOp::Add: return a + b;
        case BinOp::Sub: return a - b;
        case BinOp::Mul: return a * b;
        case BinOp::SDiv:
          if (b == 0) throw Error("interp: division by zero");
          return static_cast<uint32_t>(as_signed(a) / as_signed(b));
        case BinOp::And: return a & b;
        case BinOp::Or: return a | b;
        case BinOp::Xor: return a ^ b;
        // Shift semantics mirror the simulator's ALU exactly.
        case BinOp::Shl: return (b & 31u) == b ? (a << b) : 0u;
        case BinOp::LShr: return (b & 31u) == b ? (a >> b) : 0u;
        case BinOp::AShr: {
          const uint32_t s = b > 31 ? 31u : b;
          return static_cast<uint32_t>(as_signed(a) >>
                                       static_cast<int32_t>(s));
        }
        case BinOp::Lt: return as_signed(a) < as_signed(b) ? 1u : 0u;
        case BinOp::Le: return as_signed(a) <= as_signed(b) ? 1u : 0u;
        case BinOp::Gt: return as_signed(a) > as_signed(b) ? 1u : 0u;
        case BinOp::Ge: return as_signed(a) >= as_signed(b) ? 1u : 0u;
        case BinOp::Eq: return a == b ? 1u : 0u;
        case BinOp::Ne: return a != b ? 1u : 0u;
        default:
          SPMWCET_CHECK(false); // LAnd/LOr handled above
          return 0;
      }
    }
    case Expr::Kind::Call: {
      const Function* callee = prog_.find_function(e.name);
      SPMWCET_CHECK(callee != nullptr);
      std::vector<uint32_t> args;
      for (const auto& k : e.kids) args.push_back(eval(*k, frame));
      return call_function(*callee, args);
    }
  }
  SPMWCET_CHECK(false);
}

void Interpreter::exec(const Stmt& s, Frame& frame, const Function& fn,
                       bool& returned, uint32_t& ret_value) {
  if (returned) return;
  if (++steps_ > kMaxSteps) throw Error("interp: step budget exceeded");
  switch (s.kind) {
    case Stmt::Kind::Assign:
      frame[s.name] = eval(*s.exprs[0], frame);
      return;
    case Stmt::Kind::AssignGlobal:
      store_elem(globals_.at(s.name), 0, eval(*s.exprs[0], frame));
      return;
    case Stmt::Kind::Store: {
      const uint32_t index = eval(*s.exprs[0], frame);
      const uint32_t value = eval(*s.exprs[1], frame);
      store_elem(globals_.at(s.name), index, value);
      return;
    }
    case Stmt::Kind::ExprStmt:
      (void)eval(*s.exprs[0], frame);
      return;
    case Stmt::Kind::If:
      if (eval(*s.exprs[0], frame) != 0)
        exec(*s.body[0], frame, fn, returned, ret_value);
      else if (s.body.size() > 1)
        exec(*s.body[1], frame, fn, returned, ret_value);
      return;
    case Stmt::Kind::While:
      while (!returned && eval(*s.exprs[0], frame) != 0) {
        if (++steps_ > kMaxSteps) throw Error("interp: step budget exceeded");
        exec(*s.body[0], frame, fn, returned, ret_value);
      }
      return;
    case Stmt::Kind::For: {
      frame[s.name] = eval(*s.exprs[0], frame);
      for (;;) {
        if (returned) return;
        const uint32_t v = frame[s.name];
        const uint32_t limit = eval(*s.exprs[1], frame);
        const bool cont = s.step > 0 ? as_signed(v) < as_signed(limit)
                                     : as_signed(v) > as_signed(limit);
        if (!cont) return;
        if (++steps_ > kMaxSteps) throw Error("interp: step budget exceeded");
        exec(*s.body[0], frame, fn, returned, ret_value);
        frame[s.name] =
            frame[s.name] + static_cast<uint32_t>(s.step); // wraps like ADDI
      }
    }
    case Stmt::Kind::Return:
      if (!s.exprs.empty()) ret_value = eval(*s.exprs[0], frame);
      returned = true;
      return;
    case Stmt::Kind::Block:
      for (const auto& b : s.body) {
        exec(*b, frame, fn, returned, ret_value);
        if (returned) return;
      }
      return;
  }
  SPMWCET_CHECK(false);
}

int64_t Interpreter::read_global(const std::string& name,
                                 uint32_t index) const {
  const auto it = globals_.find(name);
  if (it == globals_.end()) throw Error("interp: no such global " + name);
  // Match Simulator::read_global: sign-extend sub-word widths.
  const uint32_t raw = it->second.raw.at(index);
  switch (elem_size(it->second.type)) {
    case 1: return static_cast<int8_t>(raw);
    case 2: return static_cast<int16_t>(raw);
    default: return static_cast<int32_t>(raw);
  }
}

void Interpreter::write_global(const std::string& name, uint32_t index,
                               int64_t value) {
  store_elem(globals_.at(name), index, static_cast<uint32_t>(value));
}

} // namespace spmwcet::minic
