// The one-command paper reproduction: run every Table-2 workload under both
// memory setups as a single run_matrix batch and render the full evaluation
// — the Table-2 benchmark summary, the per-benchmark Figure-3/6 sweep
// tables, and the Figure-4/5 WCET/ACET ratio tables — deterministically, so
// the whole report can be golden-file tested and diffed across job counts.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace spmwcet::harness {

/// One benchmark evaluated under both memory setups.
struct EvaluationResult {
  std::shared_ptr<const workloads::WorkloadInfo> workload;
  std::vector<SweepPoint> spm;
  std::vector<SweepPoint> cache;
};

/// Runs workload × {Scratchpad, Cache} × base.sizes as ONE flat batch on the
/// persistent pool. base.setup is ignored; every other knob (sizes, cache
/// shape, ablations, artifact caching) applies to both setups. Result i
/// corresponds to wls[i]. Compatibility shim over
/// api::Engine::run_evaluation; the render_* functions below are the
/// result-consuming half of the thin-client split.
std::vector<EvaluationResult> run_full_evaluation(
    const std::vector<std::shared_ptr<const workloads::WorkloadInfo>>& wls,
    const SweepConfig& base, unsigned jobs);

/// Figure 4/5: the WCET/ACET ratio series, scratchpad vs cache side by side.
TablePrinter ratio_table(const std::string& benchmark,
                         const std::vector<SweepPoint>& spm,
                         const std::vector<SweepPoint>& cache);

/// Table 2: the benchmark set with static statistics from our builds
/// (function count, code+pool bytes, data bytes).
TablePrinter benchmark_table(
    const std::vector<std::shared_ptr<const workloads::WorkloadInfo>>& wls);

/// Renders the whole evaluation report. With csv, every table is emitted as
/// CSV under a `# title` comment line instead of aligned text.
void render_evaluation(const std::vector<EvaluationResult>& results,
                       std::ostream& os, bool csv = false);

} // namespace spmwcet::harness
