// Experiment harness: reproduces the paper's workflow (Figure 1) for one
// benchmark and one memory configuration, and sweeps memory sizes from
// 64 bytes to 8 KiB.
//
// Scratchpad branch (per size): profile a main-memory-only run, solve the
// energy knapsack, relink with the chosen objects on the SPM, simulate the
// typical input (ACET), and run the WCET analyzer — no cache analysis.
// Cache branch (per size): simulate with the unified direct-mapped cache
// and analyze with the MUST-only cache analysis.
//
// Every point validates the simulated outputs against the workload's native
// reference, so a timing experiment can never silently run a miscompiled
// binary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/geometry.h"
#include "support/deadline.h"
#include "support/table_printer.h"
#include "workloads/workload.h"

namespace spmwcet::harness {

class ArtifactCache;

enum class MemSetup : uint8_t { Scratchpad, Cache };

struct SweepConfig {
  MemSetup setup = MemSetup::Scratchpad;
  /// Paper range: 64 B .. 8 KiB.
  std::vector<uint32_t> sizes = {64, 128, 256, 512, 1024, 2048, 4096, 8192};
  // Cache-branch options (future-work ablations):
  uint32_t cache_assoc = 1;
  bool cache_unified = true;
  bool with_persistence = false;
  // Scratchpad-branch option: WCET-driven allocation instead of the
  // energy knapsack (future-work ablation).
  bool wcet_driven_alloc = false;
  /// Worker threads for run_sweep: 1 = serial, 0 = all hardware threads.
  /// Points are independent pipeline runs; ordering stays deterministic.
  unsigned jobs = 1;
  /// Reuse size-independent artifacts (the no-assignment access profile)
  /// across the points of a batch. false selects the seed pipeline that
  /// re-derives everything per point; the parity tests pin both paths to
  /// byte-identical results.
  bool use_artifact_cache = true;
  /// IR-based WCET analyzer (shared predecode, layout-invariant shape
  /// reuse, flat cache analysis). false selects the seed analyzer — the
  /// --legacy-wcet escape hatch, field-identical by the parity suites.
  bool fast_wcet = true;
  /// Superblock translation tier in the simulator (threaded-code blocks
  /// over the predecoded fast path). false (--no-block-tier) keeps the
  /// per-instruction fast path — the A/B baseline; results are
  /// field-identical either way. Only meaningful with the fast simulator;
  /// cache-branch simulations always interpret (the tier folds uncached
  /// timing, so it disables itself under a functional cache).
  bool block_tier = true;
  /// Incremental IPET (per-workload LP-skeleton cache, batch-scoped) plus
  /// the flat persistence domain. false (--no-incremental) re-solves every
  /// point's ILPs from scratch and keeps the PR 5 map-based persistence
  /// analysis — the A/B baseline; results are field-identical either way.
  /// Only meaningful with fast_wcet; the skeletons live in `artifacts`.
  bool incremental_wcet = true;
  /// Batch-scoped cache injected by SweepRunner::run_matrix when
  /// use_artifact_cache is set. Null (e.g. a standalone run_point call)
  /// means every point computes its own artifacts.
  ArtifactCache* artifacts = nullptr;
  /// Cooperative wall-time budget: the pipeline checks it at stage
  /// boundaries (allocate/simulate/analyze) and aborts the point with
  /// support::DeadlineExceededError past it. Default-constructed =
  /// unbounded, the historical behavior.
  support::Deadline deadline;
};

struct SweepPoint {
  uint32_t size_bytes = 0;
  uint64_t sim_cycles = 0;  ///< ACET (typical input)
  uint64_t wcet_cycles = 0; ///< analyzed bound
  double ratio = 0.0;       ///< WCET / ACET
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint32_t spm_used_bytes = 0;
  double energy_nj = 0.0; ///< estimated from the access profile
};

namespace detail {
/// The pipeline primitive: profile/allocate/relink/simulate/analyze one
/// (setup, size) point exactly as configured. This is what the Engine and
/// the sweep workers execute; it is not part of the public surface.
SweepPoint execute_point(const workloads::WorkloadInfo& wl, MemSetup setup,
                         uint32_t size_bytes, const SweepConfig& cfg);
} // namespace detail

/// Runs one configuration point. Compatibility shim over
/// api::Engine::run_point — new code should construct an api::Engine and
/// submit PointRequests (or call the Engine's session API directly).
SweepPoint run_point(const workloads::WorkloadInfo& wl, MemSetup setup,
                     uint32_t size_bytes, const SweepConfig& cfg);

/// Runs the full size sweep. Compatibility shim over
/// api::Engine::run_sweep (cfg.jobs selects the pool width).
std::vector<SweepPoint> run_sweep(const workloads::WorkloadInfo& wl,
                                  const SweepConfig& cfg);

/// Renders sweep rows in the paper's figure style.
TablePrinter to_table(const std::string& benchmark, MemSetup setup,
                      const std::vector<SweepPoint>& points);

const char* to_string(MemSetup setup);

} // namespace spmwcet::harness
