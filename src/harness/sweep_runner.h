// Parallel sweep engine: runs (workload × MemSetup × memory-size) experiment
// points across a persistent worker pool.
//
// Every point is an independent pipeline run (link → simulate → analyze), so
// the batch parallelizes perfectly; results are written into a slot indexed
// by the job's position, which makes the output ordering deterministic no
// matter which worker computes which point. Errors are captured per point and
// surfaced in job order, so a parallel run fails with the same diagnostic as
// the serial loop it replaces.
//
// The pool outlives individual batches: a SweepRunner keeps its workers
// across run()/run_matrix() calls, and the process-wide shared_runner() lets
// every run_matrix invocation in a long-running loop reuse one pool sized
// once by --jobs instead of paying thread start-up per batch. run_matrix also
// scopes one ArtifactCache to each batch, so size-independent artifacts (the
// no-assignment allocation profile) are computed once per workload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "support/thread_pool.h"
#include "workloads/workload.h"

namespace spmwcet::harness {

/// One experiment point of a batch. The workload is borrowed, not owned:
/// callers keep their WorkloadInfo alive for the duration of run().
struct SweepJob {
  const workloads::WorkloadInfo* workload = nullptr;
  SweepConfig config; ///< config.setup selects the scratchpad/cache branch
  uint32_t size_bytes = 0;
};

struct SweepOutcome {
  SweepPoint point;
  std::string error; ///< non-empty if this point threw
  /// The point threw support::DeadlineExceededError specifically — the
  /// typed signal survives the worker-thread boundary so run_matrix can
  /// rethrow the same type (and the Engine can answer DeadlineExceeded
  /// instead of a generic ExecutionError).
  bool deadline_exceeded = false;
  bool ok() const { return error.empty(); }
};

struct SweepRunnerOptions {
  /// Worker threads. 0 picks std::thread::hardware_concurrency();
  /// 1 runs in place on the calling thread (no pool threads).
  unsigned jobs = 1;
};

/// One full size sweep of a batch: a workload under one setup/config.
struct MatrixRequest {
  const workloads::WorkloadInfo* workload = nullptr;
  SweepConfig config;
};

class SweepRunner {
public:
  explicit SweepRunner(SweepRunnerOptions opts = {});

  /// Runs every job of the batch; outcome i always corresponds to batch[i].
  /// Jobs that want artifact sharing must carry a config.artifacts cache
  /// themselves — run() executes the batch exactly as given.
  std::vector<SweepOutcome> run(const std::vector<SweepJob>& batch) const;

  /// Runs every request's size sweep as ONE flat (workload × setup × size)
  /// batch over the pool, so e.g. a benchmark's scratchpad and cache sweeps
  /// fill the same set of workers instead of running back to back. A
  /// batch-scoped ArtifactCache is injected into every job that has
  /// use_artifact_cache set and no cache of its own. Result i corresponds to
  /// requests[i], points in cfg.sizes order; throws the first failing point
  /// in batch order.
  std::vector<std::vector<SweepPoint>>
  run_matrix(const std::vector<MatrixRequest>& requests) const;

  unsigned jobs() const { return pool_.workers(); }

private:
  mutable support::ThreadPool pool_;
};

/// Process-wide persistent runner: one pool per distinct (resolved) worker
/// count, created on first use and reused by every later call, so sweeps
/// embedded in a long-running loop pay pool spin-up once instead of per
/// batch. The free run_sweep/run_matrix helpers route through this.
SweepRunner& shared_runner(unsigned jobs);

/// Expands cfg.sizes into a batch for one workload.
std::vector<SweepJob> make_sweep_jobs(const workloads::WorkloadInfo& wl,
                                      const SweepConfig& cfg);

/// Full size sweep for one workload with `jobs` workers. Throws the first
/// failing point in size order — identical failure behavior to the serial
/// loop. run_sweep(wl, cfg) is equivalent to
/// run_sweep_parallel(wl, cfg, cfg.jobs).
std::vector<SweepPoint> run_sweep_parallel(const workloads::WorkloadInfo& wl,
                                           const SweepConfig& cfg,
                                           unsigned jobs);

/// shared_runner(jobs).run_matrix(requests).
std::vector<std::vector<SweepPoint>>
run_matrix(const std::vector<MatrixRequest>& requests, unsigned jobs);

} // namespace spmwcet::harness
