#include "harness/report.h"

#include <ostream>

#include "api/engine.h"
#include "link/layout.h"
#include "support/diag.h"

namespace spmwcet::harness {

namespace {

void section(std::ostream& os, const std::string& title, bool csv) {
  if (csv) {
    os << "# " << title << "\n";
    return;
  }
  os << "==============================================================\n"
     << title << "\n"
     << "==============================================================\n";
}

void emit(const TablePrinter& table, std::ostream& os, bool csv) {
  if (csv)
    table.render_csv(os);
  else
    table.render(os);
}

} // namespace

std::vector<EvaluationResult> run_full_evaluation(
    const std::vector<std::shared_ptr<const workloads::WorkloadInfo>>& wls,
    const SweepConfig& base, unsigned jobs) {
  // Compatibility shim: the evaluation batch is owned by the Engine now
  // (api::Engine::run_evaluation); this file only renders its results.
  return api::Engine(api::EngineOptions{jobs}).run_evaluation(wls, base);
}

TablePrinter ratio_table(const std::string& benchmark,
                         const std::vector<SweepPoint>& spm,
                         const std::vector<SweepPoint>& cache) {
  TablePrinter table({"size [bytes]", benchmark + " ratio (scratchpad)",
                      "ratio (cache)"});
  for (std::size_t i = 0; i < spm.size() && i < cache.size(); ++i)
    table.add_row({TablePrinter::fmt(static_cast<uint64_t>(spm[i].size_bytes)),
                   TablePrinter::fmt(spm[i].ratio, 3),
                   TablePrinter::fmt(cache[i].ratio, 3)});
  return table;
}

TablePrinter benchmark_table(
    const std::vector<std::shared_ptr<const workloads::WorkloadInfo>>& wls) {
  TablePrinter table(
      {"Name", "Description", "functions", "code+pools [B]", "data [B]"});
  for (const auto& wl : wls) {
    const link::ObjectSizes sizes = link::measure(wl->module);
    uint64_t code = 0, data = 0;
    for (const auto& [name, bytes] : sizes.function_bytes) code += bytes;
    for (const auto& [name, bytes] : sizes.global_bytes) data += bytes;
    table.add_row({wl->name, wl->description,
                   TablePrinter::fmt(
                       static_cast<uint64_t>(wl->module.functions.size())),
                   TablePrinter::fmt(code), TablePrinter::fmt(data)});
  }
  return table;
}

void render_evaluation(const std::vector<EvaluationResult>& results,
                       std::ostream& os, bool csv) {
  std::vector<std::shared_ptr<const workloads::WorkloadInfo>> wls;
  wls.reserve(results.size());
  for (const EvaluationResult& r : results) wls.push_back(r.workload);

  section(os, "Table 2: benchmarks", csv);
  emit(benchmark_table(wls), os, csv);
  os << "\n";

  for (const EvaluationResult& r : results) {
    section(os, "Figure 3/6: " + r.workload->name + " size sweeps", csv);
    emit(to_table(r.workload->name, MemSetup::Scratchpad, r.spm), os, csv);
    if (!csv) os << "\n";
    emit(to_table(r.workload->name, MemSetup::Cache, r.cache), os, csv);
    os << "\n";
  }

  for (const EvaluationResult& r : results) {
    section(os, "Figure 4/5: " + r.workload->name + " WCET/ACET ratio", csv);
    emit(ratio_table(r.workload->name, r.spm, r.cache), os, csv);
    os << "\n";
  }
}

} // namespace spmwcet::harness
