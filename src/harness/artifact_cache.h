// Shared cache of size-independent experiment artifacts.
//
// The sweep matrix re-visits each workload once per memory size, but some of
// the pipeline's intermediate products do not depend on the size at all: the
// paper's allocation profile comes from a no-assignment (main-memory-only)
// image, so the profiling simulation yields the same AccessProfile for every
// scratchpad capacity. That no-assignment image itself is also what the
// cache branch simulates at every cache size (caches are transparent to
// layout). An ArtifactCache shared across the points of a batch runs the
// profiling simulation and the no-assignment link once per workload and
// hands the immutable results to every point.
//
// Thread safety comes from support::Memoizer: concurrent points that need
// the same artifact block until the first computation finishes and the
// compute function runs exactly once (a throwing compute is retried by the
// next caller). Entries are keyed by WorkloadInfo address; the cache must
// not outlive the workloads it indexes, which is why
// SweepRunner::run_matrix scopes one cache to each batch.
#pragma once

#include <memory>

#include "link/image.h"
#include "sim/profile.h"
#include "support/memoize.h"
#include "workloads/workload.h"

namespace spmwcet::harness {

class ArtifactCache {
public:
  using ProfileFn = std::function<sim::AccessProfile()>;
  using ImageFn = std::function<link::Image()>;
  using Stats = support::MemoStats;

  /// Returns the workload's no-assignment access profile, computing it with
  /// `compute` on first use and serving the shared copy afterwards.
  std::shared_ptr<const sim::AccessProfile>
  profile(const workloads::WorkloadInfo& wl, const ProfileFn& compute) {
    return profiles_.get(&wl, compute);
  }

  /// Returns the workload's canonical no-assignment image (the executable
  /// the cache branch simulates at every size and the profiling simulation
  /// runs on), linking it with `compute` once per workload per batch.
  std::shared_ptr<const link::Image>
  image(const workloads::WorkloadInfo& wl, const ImageFn& compute) {
    return images_.get(&wl, compute);
  }

  /// hits = served from cache, misses = ran the profiling simulation.
  Stats stats() const { return profiles_.stats(); }

  /// hits = served from cache, misses = ran the no-assignment link.
  Stats image_stats() const { return images_.stats(); }

  void clear() {
    profiles_.clear();
    images_.clear();
  }

private:
  support::Memoizer<const workloads::WorkloadInfo*, sim::AccessProfile>
      profiles_;
  support::Memoizer<const workloads::WorkloadInfo*, link::Image> images_;
};

} // namespace spmwcet::harness
