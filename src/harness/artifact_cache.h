// Shared cache of size-independent experiment artifacts.
//
// The sweep matrix re-visits each workload once per memory size, but some of
// the pipeline's intermediate products do not depend on the size at all: the
// paper's allocation profile comes from a no-assignment (main-memory-only)
// image, so the profiling simulation yields the same AccessProfile for every
// scratchpad capacity. That no-assignment image itself is also what the
// cache branch simulates at every cache size (caches are transparent to
// layout). The analyzer's front end splits the same way: the
// layout-invariant ProgramShape (CFG structure, loops, bound binding) is
// one-per-workload, the bound ProgramView (addresses, value analysis) is
// one-per-image — so the cache branch analyzes all its sizes against a
// single cached view, and the predecoded canonical image (DecodedImage) is
// shared by its simulations and the analyzer alike. An ArtifactCache shared
// across the points of a batch computes each of these once per workload and
// hands the immutable results to every point.
//
// Thread safety comes from support::Memoizer: concurrent points that need
// the same artifact block until the first computation finishes and the
// compute function runs exactly once (a throwing compute is retried by the
// next caller). Entries are keyed by WorkloadInfo address; the cache must
// not outlive the workloads it indexes, which is why
// SweepRunner::run_matrix scopes one cache to each batch.
#pragma once

#include <memory>

#include "link/image.h"
#include "program/decoded_image.h"
#include "sim/block_table.h"
#include "sim/profile.h"
#include "support/memoize.h"
#include "wcet/frontend.h"
#include "wcet/ipet.h"
#include "workloads/workload.h"

namespace spmwcet::harness {

class ArtifactCache {
public:
  using ProfileFn = std::function<sim::AccessProfile()>;
  using ImageFn = std::function<link::Image()>;
  using DecodedFn = std::function<program::DecodedImage()>;
  using BlocksFn = std::function<sim::BlockTable()>;
  using ShapeFn = std::function<wcet::ProgramShape()>;
  using ViewFn = std::function<wcet::ProgramView()>;
  using Stats = support::MemoStats;

  /// Returns the workload's no-assignment access profile, computing it with
  /// `compute` on first use and serving the shared copy afterwards.
  std::shared_ptr<const sim::AccessProfile>
  profile(const workloads::WorkloadInfo& wl, const ProfileFn& compute) {
    return profiles_.get(&wl, compute);
  }

  /// Returns the workload's canonical no-assignment image (the executable
  /// the cache branch simulates at every size and the profiling simulation
  /// runs on), linking it with `compute` once per workload per batch.
  std::shared_ptr<const link::Image>
  image(const workloads::WorkloadInfo& wl, const ImageFn& compute) {
    return images_.get(&wl, compute);
  }

  /// Returns the shared decode table of the workload's canonical image —
  /// used by every cache-branch simulation of the batch and by the
  /// analyzer front end, so the image's code is decoded once per workload.
  std::shared_ptr<const program::DecodedImage>
  decoded(const workloads::WorkloadInfo& wl, const DecodedFn& compute) {
    return decoded_.get(&wl, compute);
  }

  /// Returns the compiled superblock table of the workload's canonical
  /// no-assignment image — shared by the batch's profiling simulations
  /// (the block tier compiles per image, and the profiling run is always
  /// against the no-assignment layout). Placed SPM images differ per size
  /// and compile their own tables inside the simulator.
  std::shared_ptr<const sim::BlockTable>
  blocks(const workloads::WorkloadInfo& wl, const BlocksFn& compute) {
    return blocks_.get(&wl, compute);
  }

  /// Returns the workload's layout-invariant analyzer skeleton
  /// (wcet::ProgramShape). One shape serves every point of both setups:
  /// the SPM branch re-binds it per placement, the cache branch binds it
  /// once (see view()).
  std::shared_ptr<const wcet::ProgramShape>
  shape(const workloads::WorkloadInfo& wl, const ShapeFn& compute) {
    return shapes_.get(&wl, compute);
  }

  /// Returns the analyzer front end bound to the workload's canonical
  /// no-assignment image (CFGs, annotations, value analysis) — shared by
  /// every cache size of the cache branch, which all analyze that one
  /// image. The compute function must pin the image and shape it binds
  /// (ProgramView::pinned_image / ::shape).
  std::shared_ptr<const wcet::ProgramView>
  view(const workloads::WorkloadInfo& wl, const ViewFn& compute) {
    return views_.get(&wl, compute);
  }

  /// Returns the workload's IPET skeleton store (wcet::IpetCache): one per
  /// workload per batch, shared by every point of both setups. The store
  /// itself builds per-function skeletons lazily on first solve, so the
  /// compute function is just default construction.
  std::shared_ptr<const wcet::IpetCache>
  ipet(const workloads::WorkloadInfo& wl) {
    return ipet_.get(&wl, [] { return wcet::IpetCache(); });
  }

  /// hits = served from cache, misses = ran the profiling simulation.
  Stats stats() const { return profiles_.stats(); }

  /// hits = served from cache, misses = ran the no-assignment link.
  Stats image_stats() const { return images_.stats(); }

  /// hits = reused the shared decode table, misses = decoded the image.
  Stats decoded_stats() const { return decoded_.stats(); }

  /// hits = reused the compiled block table, misses = compiled it.
  Stats blocks_stats() const { return blocks_.stats(); }

  /// hits = reused the invariant analyzer skeleton, misses = built it.
  Stats shape_stats() const { return shapes_.stats(); }

  /// hits = reused the bound front end, misses = bound + value-analyzed.
  Stats view_stats() const { return views_.stats(); }

  /// hits = reused an existing IPET skeleton store.
  Stats ipet_stats() const { return ipet_.stats(); }

  void clear() {
    profiles_.clear();
    images_.clear();
    decoded_.clear();
    blocks_.clear();
    shapes_.clear();
    views_.clear();
    ipet_.clear();
  }

private:
  support::Memoizer<const workloads::WorkloadInfo*, sim::AccessProfile>
      profiles_;
  support::Memoizer<const workloads::WorkloadInfo*, link::Image> images_;
  support::Memoizer<const workloads::WorkloadInfo*, program::DecodedImage>
      decoded_;
  support::Memoizer<const workloads::WorkloadInfo*, sim::BlockTable> blocks_;
  support::Memoizer<const workloads::WorkloadInfo*, wcet::ProgramShape>
      shapes_;
  support::Memoizer<const workloads::WorkloadInfo*, wcet::ProgramView> views_;
  support::Memoizer<const workloads::WorkloadInfo*, wcet::IpetCache> ipet_;
};

} // namespace spmwcet::harness
