// Shared cache of size-independent experiment artifacts.
//
// The sweep matrix re-visits each workload once per memory size, but some of
// the pipeline's intermediate products do not depend on the size at all: the
// paper's allocation profile comes from a no-assignment (main-memory-only)
// image, so the profiling simulation yields the same AccessProfile for every
// scratchpad capacity. An ArtifactCache shared across the points of a batch
// runs that simulation once per workload and hands the immutable result to
// every point, roughly halving the scratchpad branch of a sweep.
//
// Thread safety comes from support::Memoizer: concurrent points that need
// the same artifact block until the first computation finishes and the
// compute function runs exactly once (a throwing compute is retried by the
// next caller). Entries are keyed by WorkloadInfo address; the cache must
// not outlive the workloads it indexes, which is why
// SweepRunner::run_matrix scopes one cache to each batch.
#pragma once

#include <memory>

#include "sim/profile.h"
#include "support/memoize.h"
#include "workloads/workload.h"

namespace spmwcet::harness {

class ArtifactCache {
public:
  using ProfileFn = std::function<sim::AccessProfile()>;
  using Stats = support::Memoizer<const workloads::WorkloadInfo*,
                                  sim::AccessProfile>::Stats;

  /// Returns the workload's no-assignment access profile, computing it with
  /// `compute` on first use and serving the shared copy afterwards.
  std::shared_ptr<const sim::AccessProfile>
  profile(const workloads::WorkloadInfo& wl, const ProfileFn& compute) {
    return profiles_.get(&wl, compute);
  }

  /// hits = served from cache, misses = ran the profiling simulation.
  Stats stats() const { return profiles_.stats(); }

  void clear() { profiles_.clear(); }

private:
  support::Memoizer<const workloads::WorkloadInfo*, sim::AccessProfile>
      profiles_;
};

} // namespace spmwcet::harness
