#include "harness/sweep_runner.h"

#include <map>
#include <memory>
#include <mutex>

#include "harness/artifact_cache.h"
#include "support/deadline.h"
#include "support/diag.h"

namespace spmwcet::harness {

SweepRunner::SweepRunner(SweepRunnerOptions opts) : pool_(opts.jobs) {}

std::vector<SweepOutcome>
SweepRunner::run(const std::vector<SweepJob>& batch) const {
  // Slot-indexed writes keep the result order deterministic no matter
  // which worker claims which point.
  std::vector<SweepOutcome> outcomes(batch.size());
  pool_.for_each(batch.size(), [&](std::size_t i) {
    const SweepJob& job = batch[i];
    try {
      if (job.workload == nullptr)
        throw Error("sweep: job " + std::to_string(i) + " has no workload");
      outcomes[i].point = detail::execute_point(
          *job.workload, job.config.setup, job.size_bytes, job.config);
    } catch (const support::DeadlineExceededError& e) {
      outcomes[i].error = e.what();
      outcomes[i].deadline_exceeded = true;
    } catch (const std::exception& e) {
      outcomes[i].error = e.what();
    }
  });
  return outcomes;
}

std::vector<std::vector<SweepPoint>>
SweepRunner::run_matrix(const std::vector<MatrixRequest>& requests) const {
  // One cache per batch: keyed by workload address, so it must not outlive
  // the borrowed WorkloadInfo objects.
  ArtifactCache artifacts;

  std::vector<SweepJob> batch;
  for (const MatrixRequest& req : requests) {
    if (req.workload == nullptr) throw Error("sweep: request has no workload");
    std::vector<SweepJob> jobs_for = make_sweep_jobs(*req.workload, req.config);
    for (SweepJob& job : jobs_for)
      if (job.config.use_artifact_cache && job.config.artifacts == nullptr)
        job.config.artifacts = &artifacts;
    batch.insert(batch.end(), jobs_for.begin(), jobs_for.end());
  }

  const std::vector<SweepOutcome> outcomes = run(batch);
  for (const SweepOutcome& o : outcomes)
    if (!o.ok()) {
      if (o.deadline_exceeded)
        throw support::DeadlineExceededError(
            o.error, support::DeadlineExceededError::RawMessage{});
      throw Error(o.error);
    }

  std::vector<std::vector<SweepPoint>> results;
  results.reserve(requests.size());
  std::size_t at = 0;
  for (const MatrixRequest& req : requests) {
    const std::size_t n = req.config.sizes.size();
    std::vector<SweepPoint> points;
    points.reserve(n);
    for (std::size_t i = 0; i < n; ++i) points.push_back(outcomes[at++].point);
    results.push_back(std::move(points));
  }
  return results;
}

SweepRunner& shared_runner(unsigned jobs) {
  static std::mutex mu;
  // Intentionally leaked: pool threads must stay joinable for any code that
  // sweeps during static destruction, and the OS reclaims them at exit.
  static std::map<unsigned, std::unique_ptr<SweepRunner>>* runners =
      new std::map<unsigned, std::unique_ptr<SweepRunner>>();
  const unsigned width = support::resolve_jobs(jobs);
  const std::lock_guard<std::mutex> lk(mu);
  std::unique_ptr<SweepRunner>& slot = (*runners)[width];
  if (!slot) slot = std::make_unique<SweepRunner>(SweepRunnerOptions{width});
  return *slot;
}

std::vector<SweepJob> make_sweep_jobs(const workloads::WorkloadInfo& wl,
                                      const SweepConfig& cfg) {
  std::vector<SweepJob> batch;
  batch.reserve(cfg.sizes.size());
  for (const uint32_t size : cfg.sizes)
    batch.push_back(SweepJob{&wl, cfg, size});
  return batch;
}

std::vector<SweepPoint> run_sweep_parallel(const workloads::WorkloadInfo& wl,
                                           const SweepConfig& cfg,
                                           unsigned jobs) {
  return run_matrix({MatrixRequest{&wl, cfg}}, jobs).front();
}

std::vector<std::vector<SweepPoint>>
run_matrix(const std::vector<MatrixRequest>& requests, unsigned jobs) {
  return shared_runner(jobs).run_matrix(requests);
}

} // namespace spmwcet::harness
