#include "harness/sweep_runner.h"

#include "support/diag.h"
#include "support/parallel.h"

namespace spmwcet::harness {

SweepRunner::SweepRunner(SweepRunnerOptions opts)
    : jobs_(support::resolve_jobs(opts.jobs)) {}

std::vector<SweepOutcome>
SweepRunner::run(const std::vector<SweepJob>& batch) const {
  // Slot-indexed writes keep the result order deterministic no matter
  // which worker claims which point.
  std::vector<SweepOutcome> outcomes(batch.size());
  support::parallel_for(batch.size(), jobs_, [&](std::size_t i) {
    const SweepJob& job = batch[i];
    try {
      if (job.workload == nullptr)
        throw Error("sweep: job " + std::to_string(i) + " has no workload");
      outcomes[i].point = run_point(*job.workload, job.config.setup,
                                    job.size_bytes, job.config);
    } catch (const std::exception& e) {
      outcomes[i].error = e.what();
    }
  });
  return outcomes;
}

std::vector<SweepJob> make_sweep_jobs(const workloads::WorkloadInfo& wl,
                                      const SweepConfig& cfg) {
  std::vector<SweepJob> batch;
  batch.reserve(cfg.sizes.size());
  for (const uint32_t size : cfg.sizes)
    batch.push_back(SweepJob{&wl, cfg, size});
  return batch;
}

std::vector<SweepPoint> run_sweep_parallel(const workloads::WorkloadInfo& wl,
                                           const SweepConfig& cfg,
                                           unsigned jobs) {
  return run_matrix({MatrixRequest{&wl, cfg}}, jobs).front();
}

std::vector<std::vector<SweepPoint>>
run_matrix(const std::vector<MatrixRequest>& requests, unsigned jobs) {
  std::vector<SweepJob> batch;
  for (const MatrixRequest& req : requests) {
    if (req.workload == nullptr) throw Error("sweep: request has no workload");
    auto jobs_for = make_sweep_jobs(*req.workload, req.config);
    batch.insert(batch.end(), jobs_for.begin(), jobs_for.end());
  }

  const SweepRunner runner(SweepRunnerOptions{jobs});
  const std::vector<SweepOutcome> outcomes = runner.run(batch);
  for (const SweepOutcome& o : outcomes)
    if (!o.ok()) throw Error(o.error);

  std::vector<std::vector<SweepPoint>> results;
  results.reserve(requests.size());
  std::size_t at = 0;
  for (const MatrixRequest& req : requests) {
    const std::size_t n = req.config.sizes.size();
    std::vector<SweepPoint> points;
    points.reserve(n);
    for (std::size_t i = 0; i < n; ++i) points.push_back(outcomes[at++].point);
    results.push_back(std::move(points));
  }
  return results;
}

} // namespace spmwcet::harness
