#include "harness/experiment.h"

#include "api/engine.h"
#include "harness/artifact_cache.h"
#include "harness/sweep_runner.h"

#include <optional>

#include "alloc/allocator.h"
#include "link/layout.h"
#include "program/decoded_image.h"
#include "sim/simulator.h"
#include "support/diag.h"
#include "support/fault.h"
#include "wcet/analyzer.h"

namespace spmwcet::harness {

namespace {

/// The canonical no-assignment link shared by the cache branch and the
/// profiling simulation: served from the batch's ArtifactCache when one is
/// present, otherwise linked locally (the seed per-point path).
std::shared_ptr<const link::Image>
no_assignment_image(const workloads::WorkloadInfo& wl, const SweepConfig& cfg) {
  if (cfg.use_artifact_cache && cfg.artifacts != nullptr)
    return cfg.artifacts->image(
        wl, [&] { return link::link_program(wl.module, {}, {}); });
  return std::make_shared<const link::Image>(
      link::link_program(wl.module, {}, {}));
}

bool cached(const SweepConfig& cfg) {
  return cfg.use_artifact_cache && cfg.artifacts != nullptr;
}

/// The workload's layout-invariant analyzer skeleton. Any link of the
/// module yields the same shape, so a cached compute may run against
/// whichever image reaches it first; without a batch cache the shape is
/// built locally from the point's own image.
std::shared_ptr<const wcet::ProgramShape>
shape_for(const workloads::WorkloadInfo& wl, const SweepConfig& cfg,
          const link::Image& img, const program::DecodedImage& dec) {
  if (cached(cfg))
    return cfg.artifacts->shape(wl,
                                [&] { return wcet::build_shape(img, dec); });
  return std::make_shared<const wcet::ProgramShape>(
      wcet::build_shape(img, dec));
}

/// Shared decode of the canonical no-assignment image (cache branch and
/// profiling simulation): one decode per workload per batch.
std::shared_ptr<const program::DecodedImage>
canonical_decoded(const workloads::WorkloadInfo& wl, const SweepConfig& cfg,
                  const link::Image& img) {
  if (cached(cfg))
    return cfg.artifacts->decoded(
        wl, [&] { return program::DecodedImage(img); });
  return std::make_shared<const program::DecodedImage>(img);
}

/// The analyzer front end bound to the canonical image, shared by every
/// cache size of the cache branch. The view pins the image (and shape) it
/// borrows, so a cached copy outlives the batch safely.
std::shared_ptr<const wcet::ProgramView>
canonical_view(const workloads::WorkloadInfo& wl, const SweepConfig& cfg,
               const std::shared_ptr<const link::Image>& img,
               const program::DecodedImage& dec) {
  const auto make = [&] {
    wcet::ProgramView v =
        wcet::bind_view(shape_for(wl, cfg, *img, dec), *img, dec);
    v.pinned_image = img;
    return v;
  };
  if (cached(cfg)) return cfg.artifacts->view(wl, make);
  return std::make_shared<const wcet::ProgramView>(make());
}

/// The batch's per-workload IPET skeleton store when incremental solving is
/// on and a batch cache exists; null otherwise (a lone point gains nothing
/// from building skeletons it will use once).
std::shared_ptr<const wcet::IpetCache>
ipet_cache_for(const workloads::WorkloadInfo& wl, const SweepConfig& cfg) {
  if (cfg.incremental_wcet && cfg.fast_wcet && cached(cfg))
    return cfg.artifacts->ipet(wl);
  return nullptr;
}

void validate_outputs(const workloads::WorkloadInfo& wl, sim::Simulator& s,
                      const std::string& what) {
  for (const auto& exp : wl.expected)
    for (std::size_t i = 0; i < exp.values.size(); ++i) {
      const int64_t got = s.read_global(exp.name, static_cast<uint32_t>(i));
      if (got != exp.values[i])
        throw Error("harness: " + wl.name + " produced wrong output in " +
                    what + " configuration: " + exp.name + "[" +
                    std::to_string(i) + "] = " + std::to_string(got) +
                    ", expected " + std::to_string(exp.values[i]));
    }
}

/// Profile-based energy estimate: every profiled access is charged by the
/// memory class its symbol landed in; stack and anonymous traffic is main
/// memory; cache configurations charge hits/misses instead of raw accesses.
double estimate_energy(const link::Image& img, const sim::SimResult& run,
                       bool cached) {
  const energy::EnergyModel em;
  double nj = static_cast<double>(run.cycles) * em.cpu_cycle_nj;
  if (cached) {
    nj += static_cast<double>(run.cache_hits) * em.cache_hit_nj;
    nj += static_cast<double>(run.cache_misses) * em.cache_miss_nj;
    return nj;
  }
  auto charge = [&](const sim::AccessCounts& c, isa::MemClass cls) {
    nj += static_cast<double>(c.fetch) * em.access_nj(cls, 2);
    for (int w = 0; w < 3; ++w)
      nj += static_cast<double>(c.load[w] + c.store[w]) *
            em.access_nj(cls, 1u << w);
  };
  for (const auto& [name, counts] : run.profile.symbols) {
    const link::Symbol* sym = img.find_symbol(name);
    const isa::MemClass cls = sym != nullptr
                                  ? img.regions.classify(sym->addr)
                                  : isa::MemClass::MainMemory;
    charge(counts, cls);
  }
  charge(run.profile.stack, isa::MemClass::MainMemory);
  charge(run.profile.other, isa::MemClass::MainMemory);
  return nj;
}

SweepPoint run_spm_point(const workloads::WorkloadInfo& wl, uint32_t size,
                         const SweepConfig& cfg) {
  link::LinkOptions opts;
  opts.spm_size = size;

  // 1. Allocation: profile-driven energy knapsack (the paper's flow) or
  //    the WCET-driven greedy ablation.
  link::SpmAssignment assignment;
  uint32_t used = 0;
  if (cfg.wcet_driven_alloc) {
    const auto alloc =
        alloc::allocate_wcet_driven(wl.module, size, opts, cfg.fast_wcet);
    assignment = alloc.assignment;
    used = alloc.used_bytes;
  } else {
    // The profile comes from an image with nothing assigned to the SPM, so
    // it is independent of the capacity under test; with a batch cache the
    // profiling simulation runs once per workload instead of once per size.
    std::shared_ptr<const sim::AccessProfile> shared_profile;
    sim::AccessProfile local_profile;
    const sim::AccessProfile* profile = nullptr;
    if (cfg.use_artifact_cache && cfg.artifacts != nullptr) {
      shared_profile = cfg.artifacts->profile(wl, [&] {
        // Canonical no-SPM link (shared with the cache branch through the
        // image cache): byte-identical profile to the per-size
        // no-assignment image the uncached path below produces.
        const auto profile_img = no_assignment_image(wl, cfg);
        sim::SimConfig pcfg;
        pcfg.collect_profile = true;
        pcfg.block_tier = cfg.block_tier;
        std::shared_ptr<const program::DecodedImage> pdec;
        if (cfg.fast_wcet) {
          pdec = canonical_decoded(wl, cfg, *profile_img);
          pcfg.predecoded = pdec.get();
        }
        // The block table compiles against the canonical no-assignment
        // image, so like the decode it is one-per-workload for the batch.
        std::shared_ptr<const sim::BlockTable> pblocks;
        if (cfg.block_tier) {
          pblocks = cfg.artifacts->blocks(wl, [&] {
            const sim::SymbolIndex syms(*profile_img);
            return pdec ? sim::BlockTable(*pdec, syms, *profile_img)
                        : sim::BlockTable(*profile_img, syms);
          });
          pcfg.compiled_blocks = pblocks.get();
        }
        sim::Simulator profiler(*profile_img, pcfg);
        return profiler.run().profile;
      });
      profile = shared_profile.get();
    } else {
      const link::Image profile_img = link::link_program(wl.module, opts, {});
      sim::SimConfig pcfg;
      pcfg.collect_profile = true;
      pcfg.block_tier = cfg.block_tier;
      sim::Simulator profiler(profile_img, pcfg);
      local_profile = profiler.run().profile;
      profile = &local_profile;
    }
    const auto alloc =
        alloc::allocate_energy_optimal(wl.module, *profile, size);
    assignment = alloc.assignment;
    used = alloc.used_bytes;
  }
  cfg.deadline.check("allocate");

  // 2. Relink with the chosen placement; simulate and analyze. The placed
  //    image is decoded once, feeding both the simulator's code table and
  //    the analyzer; the analyzer re-binds the workload's cached
  //    layout-invariant shape instead of re-discovering program structure.
  const link::Image img = link::link_program(wl.module, opts, assignment);
  sim::SimConfig scfg;
  scfg.collect_profile = true;
  // Placed images differ per size, so the simulator compiles its own block
  // table (no cross-point artifact to share).
  scfg.block_tier = cfg.block_tier;
  std::optional<program::DecodedImage> dec;
  if (cfg.fast_wcet) {
    dec.emplace(img);
    scfg.predecoded = &*dec;
  }
  sim::Simulator s(img, scfg);
  const sim::SimResult run = s.run();
  validate_outputs(wl, s, "spm/" + std::to_string(size));
  cfg.deadline.check("simulate");
  wcet::WcetReport report;
  if (cfg.fast_wcet) {
    wcet::AnalyzerConfig acfg;
    acfg.incremental = cfg.incremental_wcet;
    const auto ipet = ipet_cache_for(wl, cfg);
    acfg.ipet_cache = ipet.get();
    report = wcet::analyze_wcet(
        wcet::bind_view(shape_for(wl, cfg, img, *dec), img, *dec), acfg);
  } else {
    wcet::AnalyzerConfig acfg;
    acfg.fast_path = false;
    report = wcet::analyze_wcet(img, acfg);
  }

  SweepPoint pt;
  pt.size_bytes = size;
  pt.sim_cycles = run.cycles;
  pt.wcet_cycles = report.wcet;
  pt.ratio = static_cast<double>(report.wcet) / static_cast<double>(run.cycles);
  pt.spm_used_bytes = used;
  pt.energy_nj = estimate_energy(img, run, /*cached=*/false);
  return pt;
}

SweepPoint run_cache_point(const workloads::WorkloadInfo& wl, uint32_t size,
                           const SweepConfig& cfg) {
  // One executable serves all cache sizes (caches are transparent); with a
  // batch cache the no-assignment link runs once per workload, not per size.
  const auto shared_img = no_assignment_image(wl, cfg);
  const link::Image& img = *shared_img;

  cache::CacheConfig ccfg;
  ccfg.size_bytes = size;
  ccfg.line_bytes = 16;
  ccfg.assoc = cfg.cache_assoc;
  ccfg.unified = cfg.cache_unified;

  sim::SimConfig scfg;
  scfg.cache = ccfg;
  scfg.collect_profile = true;
  scfg.block_tier = cfg.block_tier; // no effect: the tier is cache-disabled
  // All sizes share the canonical image, so they also share its decode and
  // the analyzer's bound front end: CFGs, loops and value analysis run once
  // per workload, and each size re-runs only cache analysis + timing + IPET.
  std::shared_ptr<const program::DecodedImage> dec;
  if (cfg.fast_wcet) {
    dec = canonical_decoded(wl, cfg, img);
    scfg.predecoded = dec.get();
  }
  sim::Simulator s(img, scfg);
  const sim::SimResult run = s.run();
  validate_outputs(wl, s, "cache/" + std::to_string(size));
  cfg.deadline.check("simulate");

  wcet::AnalyzerConfig acfg;
  acfg.cache = ccfg;
  acfg.with_persistence = cfg.with_persistence;
  wcet::WcetReport report;
  if (cfg.fast_wcet) {
    acfg.incremental = cfg.incremental_wcet;
    const auto ipet = ipet_cache_for(wl, cfg);
    acfg.ipet_cache = ipet.get();
    report = wcet::analyze_wcet(*canonical_view(wl, cfg, shared_img, *dec),
                                acfg);
  } else {
    acfg.fast_path = false;
    report = wcet::analyze_wcet(img, acfg);
  }

  SweepPoint pt;
  pt.size_bytes = size;
  pt.sim_cycles = run.cycles;
  pt.wcet_cycles = report.wcet;
  pt.ratio = static_cast<double>(report.wcet) / static_cast<double>(run.cycles);
  pt.cache_hits = run.cache_hits;
  pt.cache_misses = run.cache_misses;
  pt.energy_nj = estimate_energy(img, run, /*cached=*/true);
  return pt;
}

} // namespace

namespace detail {

SweepPoint execute_point(const workloads::WorkloadInfo& wl, MemSetup setup,
                         uint32_t size_bytes, const SweepConfig& cfg) {
  // Fault sites fire before the first deadline check so an injected delay
  // deterministically pushes a bounded request past its budget.
  support::fault::maybe_delay("engine.compute.delay");
  if (support::fault::fire("engine.compute.throw"))
    throw Error("injected fault: engine.compute.throw");
  cfg.deadline.check("start");
  return setup == MemSetup::Scratchpad ? run_spm_point(wl, size_bytes, cfg)
                                       : run_cache_point(wl, size_bytes, cfg);
}

} // namespace detail

// The free functions below are the pre-Engine public surface, kept as thin
// shims so existing tests and benches keep compiling; the Engine is the
// owner of execution now.

SweepPoint run_point(const workloads::WorkloadInfo& wl, MemSetup setup,
                     uint32_t size_bytes, const SweepConfig& cfg) {
  // Identical to api::Engine::run_point, which is the same pure forward to
  // the execution primitive; called directly because benches invoke this
  // per iteration and a throwaway Engine per point buys nothing.
  return detail::execute_point(wl, setup, size_bytes, cfg);
}

std::vector<SweepPoint> run_sweep(const workloads::WorkloadInfo& wl,
                                  const SweepConfig& cfg) {
  return api::Engine(api::EngineOptions{cfg.jobs}).run_sweep(wl, cfg);
}

TablePrinter to_table(const std::string& benchmark, MemSetup setup,
                      const std::vector<SweepPoint>& points) {
  TablePrinter table({std::string(to_string(setup)) + " [bytes]",
                      benchmark + " ACET [cycles]", "WCET [cycles]",
                      "WCET/ACET", "hits", "misses", "spm used", "energy [uJ]"});
  for (const SweepPoint& pt : points) {
    table.add_row({TablePrinter::fmt(static_cast<uint64_t>(pt.size_bytes)),
                   TablePrinter::fmt(pt.sim_cycles),
                   TablePrinter::fmt(pt.wcet_cycles),
                   TablePrinter::fmt(pt.ratio, 3),
                   TablePrinter::fmt(pt.cache_hits),
                   TablePrinter::fmt(pt.cache_misses),
                   TablePrinter::fmt(static_cast<uint64_t>(pt.spm_used_bytes)),
                   TablePrinter::fmt(pt.energy_nj / 1000.0, 2)});
  }
  return table;
}

const char* to_string(MemSetup setup) {
  return setup == MemSetup::Scratchpad ? "scratchpad" : "cache";
}

} // namespace spmwcet::harness
