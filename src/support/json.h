// Minimal JSON value, parser, and serializer for the Engine wire protocol.
//
// The container ships no third-party JSON dependency, so the wire codec
// (api/wire.h) builds on this self-contained implementation instead. Scope
// is deliberately small: full RFC 8259 parsing (with \uXXXX escapes and
// surrogate pairs), integer-preserving numbers (uint64 cycle counts must
// round-trip exactly, so integral tokens are kept as int64 rather than
// squeezed through a double), and compact, insertion-ordered serialization
// so encoded responses are deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/diag.h"

namespace spmwcet::support::json {

/// Parse failure: malformed text, with the byte offset in the message.
class JsonError : public Error {
public:
  explicit JsonError(const std::string& what) : Error(what) {}
};

/// One JSON value. Objects preserve insertion order (member lookup is
/// linear — wire messages have a handful of keys).
class Value {
public:
  enum class Kind : uint8_t { Null, Bool, Int, Double, String, Array, Object };

  Value() : kind_(Kind::Null) {}
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}
  Value(int64_t v) : kind_(Kind::Int), int_(v) {}
  Value(uint64_t v) : kind_(Kind::Int), int_(static_cast<int64_t>(v)) {}
  Value(int v) : kind_(Kind::Int), int_(v) {}
  Value(unsigned v) : kind_(Kind::Int), int_(v) {}
  Value(double v) : kind_(Kind::Double), double_(v) {}
  Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
  Value(const char* s) : kind_(Kind::String), str_(s) {}

  static Value array() { Value v; v.kind_ = Kind::Array; return v; }
  static Value object() { Value v; v.kind_ = Kind::Object; return v; }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_int() const { return kind_ == Kind::Int; }
  bool is_number() const { return kind_ == Kind::Int || kind_ == Kind::Double; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  // Typed accessors; SPMWCET_CHECK-protected, so misuse inside the codec
  // surfaces as a loud internal error rather than UB.
  bool as_bool() const;
  int64_t as_int() const;    ///< Int only (wire fields that must be integral)
  double as_double() const;  ///< Int or Double
  const std::string& as_string() const;
  const std::vector<Value>& items() const;
  const std::vector<std::pair<std::string, Value>>& members() const;

  /// Object member by key, or nullptr when absent (or not an object).
  const Value* find(const std::string& key) const;

  /// Appends to an array value.
  void push(Value v);
  /// Sets an object member (appends; callers do not re-set keys).
  void set(const std::string& key, Value v);

  /// Compact serialization (no whitespace), members in insertion order.
  std::string dump() const;

private:
  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

/// Parses one complete JSON document; trailing non-whitespace is an error.
/// Throws JsonError on malformed input.
Value parse(const std::string& text);

/// Escapes and quotes `s` as a JSON string literal.
std::string quote(const std::string& s);

} // namespace spmwcet::support::json
