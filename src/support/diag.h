// Diagnostics: error types and checked assertions used across the library.
//
// The library reports unrecoverable misuse (malformed programs, inconsistent
// annotations, solver failures) with exceptions derived from spmwcet::Error,
// following the Core Guidelines preference for exceptions over error codes
// in non-hot paths.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace spmwcet {

/// Base class for all errors raised by the library.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A program under construction or analysis is malformed (e.g. an undefined
/// symbol, an out-of-range branch that could not be relaxed, recursion in
/// the call graph).
class ProgramError : public Error {
public:
  explicit ProgramError(const std::string& what) : Error(what) {}
};

/// A required WCET annotation is missing or inconsistent (e.g. a loop with
/// no bound, an access hint that contradicts the value analysis).
class AnnotationError : public Error {
public:
  explicit AnnotationError(const std::string& what) : Error(what) {}
};

/// The simulator trapped: illegal instruction, unmapped memory access,
/// runaway execution past the instruction budget.
class SimulationError : public Error {
public:
  explicit SimulationError(const std::string& what) : Error(what) {}
};

/// The LP/ILP solver could not produce a finite optimum (infeasible or
/// unbounded model), which indicates a malformed IPET or knapsack instance.
class SolverError : public Error {
public:
  explicit SolverError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  throw Error(std::string("internal check failed: ") + cond + " at " + file +
              ":" + std::to_string(line) + (msg.empty() ? "" : ": " + msg));
}
} // namespace detail

} // namespace spmwcet

/// Internal invariant check; always on (the library is not performance
/// critical enough to justify unchecked builds).
#define SPMWCET_CHECK(cond)                                                    \
  do {                                                                         \
    if (!(cond))                                                               \
      ::spmwcet::detail::check_failed(#cond, __FILE__, __LINE__, "");          \
  } while (false)

#define SPMWCET_CHECK_MSG(cond, msg)                                           \
  do {                                                                         \
    if (!(cond))                                                               \
      ::spmwcet::detail::check_failed(#cond, __FILE__, __LINE__, (msg));       \
  } while (false)
