// Minimal fixed-width table formatter used by the benchmark harness to
// print paper-style result tables, and a CSV emitter for post-processing.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace spmwcet {

/// Collects rows of string cells and renders them as an aligned text table
/// (first row is the header) or as CSV.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header rule.
  void render(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (no quoting needed for our numeric cells).
  void render_csv(std::ostream& os) const;

  /// Convenience: render to a string.
  std::string to_string() const;

  std::size_t row_count() const { return rows_.size(); }

  /// Formats a double with `prec` digits after the point.
  static std::string fmt(double v, int prec = 3);
  static std::string fmt(uint64_t v);
  static std::string fmt(int64_t v);

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace spmwcet
