// Persistent worker pool with one shared work queue.
//
// Unlike parallel_for (which spawns and joins threads per call), a ThreadPool
// creates its workers once and reuses them for every subsequent batch, so a
// long-running process that issues many sweeps pays thread start-up exactly
// once. Batches keep parallel_for's semantics: indices are claimed from a
// shared atomic counter (work stealing), the calling thread participates as
// one of the workers, and for_each blocks until the whole batch has drained.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/parallel.h"

namespace spmwcet::support {

class ThreadPool {
public:
  /// `jobs` follows the user-facing knob: 0 = all hardware threads, 1 = no
  /// extra threads (for_each runs in place on the calling thread).
  explicit ThreadPool(unsigned jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Pool width, counting the calling thread that joins each batch.
  unsigned workers() const { return workers_; }

  /// Calls fn(i) for every i in [0, count) and returns once all calls have
  /// finished. fn must be safe to call concurrently for distinct indices and
  /// must not let exceptions escape (they would terminate a worker thread).
  /// Concurrent for_each calls are serialized, so the pool itself may be
  /// shared freely.
  void for_each(std::size_t count, const std::function<void(std::size_t)>& fn);

private:
  void worker_loop();

  unsigned workers_;
  std::vector<std::thread> threads_;

  // Batch state, guarded by mu_. A batch is published by bumping generation_;
  // workers claim indices from next_ and report completion via active_.
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  uint64_t generation_ = 0;
  std::size_t count_ = 0;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::atomic<std::size_t> next_{0};
  std::size_t active_ = 0;
  bool stop_ = false;

  std::mutex batch_mu_; ///< serializes concurrent for_each callers
};

} // namespace spmwcet::support
