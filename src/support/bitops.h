// Bit-field helpers for 16-bit instruction encodings.
#pragma once

#include <cstdint>

#include "support/diag.h"

namespace spmwcet {

/// Extract bits [hi:lo] (inclusive) of `v`.
constexpr uint32_t bits(uint32_t v, unsigned hi, unsigned lo) {
  return (v >> lo) & ((1u << (hi - lo + 1)) - 1u);
}

/// Place `field` into bits [hi:lo]; `field` must fit.
constexpr uint32_t place(uint32_t field, unsigned hi, unsigned lo) {
  return (field & ((1u << (hi - lo + 1)) - 1u)) << lo;
}

/// Returns true if `field` fits into `width` bits unsigned.
constexpr bool fits_unsigned(uint32_t field, unsigned width) {
  return width >= 32 || field < (1u << width);
}

/// Returns true if `field` fits into `width` bits as a two's-complement
/// signed value.
constexpr bool fits_signed(int32_t field, unsigned width) {
  const int32_t lo = -(1 << (width - 1));
  const int32_t hi = (1 << (width - 1)) - 1;
  return field >= lo && field <= hi;
}

/// Sign-extend the low `width` bits of `v`.
constexpr int32_t sign_extend(uint32_t v, unsigned width) {
  const uint32_t m = 1u << (width - 1);
  const uint32_t x = v & ((1u << width) - 1u);
  return static_cast<int32_t>((x ^ m) - m);
}

/// Round `v` up to the next multiple of `align` (a power of two).
constexpr uint32_t align_up(uint32_t v, uint32_t align) {
  return (v + align - 1) & ~(align - 1);
}

/// Round `v` down to a multiple of `align` (a power of two).
constexpr uint32_t align_down(uint32_t v, uint32_t align) {
  return v & ~(align - 1);
}

/// True if `v` is a power of two (and nonzero).
constexpr bool is_pow2(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power of two.
constexpr unsigned log2_pow2(uint32_t v) {
  unsigned n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

} // namespace spmwcet
