#include "support/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/fault.h"

namespace spmwcet::support::net {

namespace {

/// Remaining milliseconds until `at` for poll(); floor 0 so an elapsed
/// deadline polls nonblocking instead of negative (= infinite).
int remaining_poll_ms(std::chrono::steady_clock::time_point at) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      at - std::chrono::steady_clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > INT32_MAX) return INT32_MAX;
  return static_cast<int>(left.count());
}

/// One read(2) through the fault layer: socket.read.eintr injects a
/// spurious EINTR, socket.read.short clamps the chunk to one byte (both
/// must be invisible to callers of the retrying loops above this).
ssize_t read_some(int fd, char* chunk, std::size_t cap) {
  if (fault::fire("socket.read.eintr")) {
    errno = EINTR;
    return -1;
  }
  if (cap > 1 && fault::fire("socket.read.short")) cap = 1;
  return ::read(fd, chunk, cap);
}

/// One send(2) through the fault layer: socket.write.eintr injects EINTR,
/// socket.write.fail simulates the peer vanishing (ECONNRESET),
/// socket.write.short clamps to one byte.
ssize_t send_some(int fd, const char* data, std::size_t size, int flags) {
  if (fault::fire("socket.write.eintr")) {
    errno = EINTR;
    return -1;
  }
  if (fault::fire("socket.write.fail")) {
    errno = ECONNRESET;
    return -1;
  }
  if (size > 1 && fault::fire("socket.write.short")) size = 1;
  return ::send(fd, data, size, flags);
}

[[noreturn]] void fail(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path))
    throw Error("unix socket path too long (max " +
                std::to_string(sizeof(addr.sun_path) - 1) +
                " bytes): " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in loopback_addr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

} // namespace

void Socket::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener Listener::unix_domain(const std::string& path) {
  const sockaddr_un addr = unix_addr(path);
  Listener l;
  // path_ is claimed only after a successful bind: the destructor unlinks
  // path_, and a construction abandoned at the liveness probe below must
  // not take the *live* server's socket file down with it.
  l.fd_ = Socket(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!l.fd_.valid()) fail("socket(AF_UNIX)");
  // A stale socket file from a crashed previous run would make bind fail
  // with EADDRINUSE forever — but unlinking unconditionally would steal a
  // *live* server's address (its clients silently route to us while it
  // keeps running against an orphaned inode). Probe before replacing: only
  // a path nothing answers on is stale.
  struct stat st {};
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode))
      throw Error("refusing to bind " + path +
                  ": path exists and is not a socket");
    const Socket probe(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (probe.valid() &&
        ::connect(probe.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      throw Error("refusing to replace live unix socket " + path +
                  " (another server is accepting connections there)");
    ::unlink(path.c_str());
  }
  if (::bind(l.fd_.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    fail("bind(" + path + ")");
  if (::listen(l.fd_.fd(), 64) != 0) fail("listen(" + path + ")");
  l.path_ = path;

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) fail("pipe");
  l.wake_r_ = Socket(pipe_fds[0]);
  l.wake_w_ = Socket(pipe_fds[1]);
  return l;
}

Listener Listener::tcp_loopback(uint16_t port) {
  sockaddr_in addr = loopback_addr(port);
  Listener l;
  l.fd_ = Socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!l.fd_.valid()) fail("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(l.fd_.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(l.fd_.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    fail("bind(127.0.0.1:" + std::to_string(port) + ")");
  if (::listen(l.fd_.fd(), 64) != 0) fail("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(l.fd_.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    fail("getsockname");
  l.port_ = ntohs(addr.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) fail("pipe");
  l.wake_r_ = Socket(pipe_fds[0]);
  l.wake_w_ = Socket(pipe_fds[1]);
  return l;
}

Listener::~Listener() {
  if (!path_.empty() && fd_.valid()) ::unlink(path_.c_str());
}

Listener::Listener(Listener&& other) noexcept
    : fd_(std::move(other.fd_)), wake_r_(std::move(other.wake_r_)),
      wake_w_(std::move(other.wake_w_)), path_(std::move(other.path_)),
      port_(other.port_) {
  other.path_.clear();
}

Socket Listener::accept() {
  for (;;) {
    pollfd fds[2] = {{fd_.fd(), POLLIN, 0}, {wake_r_.fd(), POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Socket();
    }
    // The interrupt byte is intentionally left in the pipe: it keeps the
    // pipe readable, so every other accept() caller (and every future
    // call) wakes and returns invalid too.
    if ((fds[1].revents & POLLIN) != 0) return Socket();
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(fd_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EMFILE || errno == ENFILE) {
        // fd pressure: the pending connection cannot be accepted yet, and
        // re-polling the listen fd would return ready immediately — a
        // 100% CPU spin until descriptors free up. Back off briefly on
        // the wake pipe alone, so the loop still reacts to interrupt()
        // instantly while waiting out the pressure.
        pollfd wake{wake_r_.fd(), POLLIN, 0};
        (void)::poll(&wake, 1, 20);
        continue;
      }
      // Other transient accept failures (signal, peer reset before
      // accept) must not kill the accept loop.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Socket();
    }
    if (fault::fire("listener.accept.fail")) {
      // Simulated transient accept failure: the connection is consumed
      // and dropped (the peer sees an immediate EOF/reset), the loop
      // lives on — exactly the ECONNABORTED shape.
      ::close(fd);
      continue;
    }
    return Socket(fd);
  }
}

void Listener::interrupt() {
  const char byte = 1;
  // Best-effort and async-signal-safe; a full pipe already means an
  // unconsumed interrupt is pending, which is all that is needed.
  [[maybe_unused]] const ssize_t rc = ::write(wake_w_.fd(), &byte, 1);
}

Socket connect_unix(const std::string& path) {
  const sockaddr_un addr = unix_addr(path);
  Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!s.valid()) fail("socket(AF_UNIX)");
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    fail("connect(" + path + ")");
  return s;
}

Socket connect_tcp_loopback(uint16_t port) {
  const sockaddr_in addr = loopback_addr(port);
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) fail("socket(AF_INET)");
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    fail("connect(127.0.0.1:" + std::to_string(port) + ")");
  return s;
}

bool LineReader::read_line(std::string& line) {
  return read_line_until(line, -1) == ReadStatus::Line;
}

ReadStatus LineReader::read_line_until(std::string& line, int timeout_ms) {
  const bool bounded = timeout_ms >= 0;
  const auto deadline_at =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const std::size_t nl = buf_.find('\n', pos_);
    if (nl != std::string::npos) {
      line.assign(buf_, pos_, nl - pos_);
      pos_ = nl + 1;
      // Compact once the consumed prefix dominates, so a long session
      // does not grow the buffer without bound.
      if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
        buf_.erase(0, pos_);
        pos_ = 0;
      }
      return ReadStatus::Line;
    }
    if (eof_) {
      if (pos_ >= buf_.size()) return ReadStatus::Eof;
      line.assign(buf_, pos_, buf_.size() - pos_); // final unterminated line
      buf_.clear();
      pos_ = 0;
      return ReadStatus::Line;
    }
    // An oversized line (no newline within the cap) is truncated at the
    // cap and the overflow discarded up to the next newline, so a hostile
    // peer cannot make the server buffer arbitrary bytes. The truncated
    // prefix is delivered as a line — it will fail JSON parsing and be
    // answered with a parse error, keeping request/response pairing.
    if (buf_.size() - pos_ > max_line_) {
      line.assign(buf_, pos_, max_line_);
      // No newline anywhere in buf_ (the find above covered all of it), so
      // the whole buffer belongs to the oversized line: drop it and keep
      // discarding chunks until the line ends, preserving what follows.
      // The peer is actively streaming here (it produced an oversized
      // line), so these reads keep the plain blocking shape.
      buf_.clear();
      pos_ = 0;
      char chunk[16384];
      for (;;) {
        const ssize_t n = read_some(fd_, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
          eof_ = true;
          break;
        }
        const char* nl_at = static_cast<const char*>(
            std::memchr(chunk, '\n', static_cast<std::size_t>(n)));
        if (nl_at != nullptr) {
          buf_.assign(nl_at + 1, chunk + n - (nl_at + 1));
          break;
        }
      }
      return ReadStatus::Line;
    }
    // Wait for data / wake / timeout, then read. Socket data always beats
    // the wake fd: a drain wake must not drop requests already in flight.
    pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_fd_, POLLIN, 0}};
    const nfds_t nfds = wake_fd_ >= 0 ? 2 : 1;
    const int wait_ms = bounded ? remaining_poll_ms(deadline_at) : -1;
    const int rc = ::poll(fds, nfds, wait_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      eof_ = true; // poll itself failed: treat as connection loss
      continue;
    }
    if (rc == 0) return ReadStatus::Timeout;
    if (fds[0].revents == 0) {
      if (nfds == 2 && fds[1].revents != 0) return ReadStatus::Wake;
      continue;
    }
    char chunk[16384];
    const ssize_t n = read_some(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      eof_ = true;
      continue;
    }
    if (pos_ > 0 && pos_ == buf_.size()) {
      buf_.clear();
      pos_ = 0;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = send_some(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_all_timeout(int fd, const char* data, std::size_t size,
                      int timeout_ms) {
  if (timeout_ms < 0) return send_all(fd, data, size);
  const auto deadline_at =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t sent = 0;
  while (sent < size) {
    // Nonblocking sends plus POLLOUT waits bound the total stall without
    // flipping the socket to O_NONBLOCK (reads stay blocking).
    const ssize_t n = send_some(fd, data + sent, size - sent,
                                MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) return false;
      const int wait_ms = remaining_poll_ms(deadline_at);
      if (wait_ms <= 0) return false; // peer wedged past the budget
      pollfd p{fd, POLLOUT, 0};
      const int rc = ::poll(&p, 1, wait_ms);
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) return false; // timeout or poll failure
      continue;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

} // namespace spmwcet::support::net
