#include "support/thread_pool.h"

namespace spmwcet::support {

ThreadPool::ThreadPool(unsigned jobs) : workers_(resolve_jobs(jobs)) {
  threads_.reserve(workers_ - 1);
  for (unsigned w = 1; w < workers_; ++w)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_ready_.wait(lk, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const std::size_t count = count_;
    const auto* fn = fn_;
    lk.unlock();
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      (*fn)(i);
    }
    lk.lock();
    if (--active_ == 0) batch_done_.notify_all();
  }
}

void ThreadPool::for_each(std::size_t count,
                          const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const std::lock_guard<std::mutex> batch(batch_mu_);
  {
    const std::lock_guard<std::mutex> lk(mu_);
    count_ = count;
    fn_ = &fn;
    next_.store(0, std::memory_order_relaxed);
    active_ = threads_.size();
    ++generation_;
  }
  work_ready_.notify_all();
  // The calling thread works the same queue as the pool threads.
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    fn(i);
  }
  std::unique_lock<std::mutex> lk(mu_);
  batch_done_.wait(lk, [&] { return active_ == 0; });
  fn_ = nullptr;
}

} // namespace spmwcet::support
