// Thread-safe get-or-compute memoizer with per-entry once semantics.
//
// The single concurrency pattern behind both the workload registry and the
// harness's ArtifactCache: a mutex-guarded key → entry map where each entry
// is computed exactly once (concurrent first callers block until the one
// compute finishes; a throwing compute leaves the entry uncomputed so the
// next caller retries) and then shared immutably via shared_ptr. clear()
// drops the index only — values already handed out stay valid.
//
// An optional capacity bounds the index for resident services: when a new
// entry would push the index past the cap, the least-recently-used
// *computed* entry is evicted (entries still being computed are never
// candidates). Eviction only forgets — outstanding shared_ptrs stay valid,
// and a later request for the evicted key simply recomputes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

namespace spmwcet::support {

/// Hit/miss counters shared by every Memoizer instantiation.
struct MemoStats {
  uint64_t hits = 0;      ///< served an already-computed value
  uint64_t misses = 0;    ///< ran the compute function
  uint64_t evictions = 0; ///< dropped an entry to respect the capacity
};

template <typename Key, typename Value>
class Memoizer {
public:
  using Stats = MemoStats;

  Memoizer() = default;
  /// `capacity` = maximum number of resident entries; 0 = unbounded.
  explicit Memoizer(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the value for `key`, running `make` on first use.
  std::shared_ptr<const Value> get(const Key& key,
                                   const std::function<Value()>& make) {
    const std::shared_ptr<Entry> entry = entry_for(key);
    bool computed = false;
    try {
      std::call_once(entry->once, [&] {
        entry->value = std::make_shared<const Value>(make());
        entry->ready.store(true, std::memory_order_release);
        computed = true;
      });
    } catch (...) {
      // Forget the failed entry: it would otherwise linger uncomputed —
      // invisible to LRU eviction — so a stream of throwing keys could
      // crowd out every useful entry and then grow the index unboundedly.
      // Concurrent waiters still holding the Entry retry through its
      // once_flag as before; a waiter that succeeds re-indexes the entry
      // on its way out (and one that already succeeded is left alone).
      const std::lock_guard<std::mutex> lk(mu_);
      const auto it = entries_.find(key);
      if (it != entries_.end() && it->second == entry &&
          !entry->ready.load(std::memory_order_acquire))
        entries_.erase(it);
      throw;
    }
    const std::lock_guard<std::mutex> lk(mu_);
    if (computed) {
      ++stats_.misses;
      // A sibling whose earlier attempt threw may have detached this entry
      // (see the catch above) while we were still computing it; re-index
      // the success so it is served, not recomputed. A newer entry that
      // already took the key wins — latest insertion is authoritative.
      if (entries_.find(key) == entries_.end()) {
        evict_overflow(/*reserve=*/1);
        entries_[key] = entry;
      }
    } else {
      ++stats_.hits;
    }
    entry->last_used = ++tick_;
    return entry->value;
  }

  Stats stats() const {
    const std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lk(mu_);
    return entries_.size();
  }

  std::size_t capacity() const {
    const std::lock_guard<std::mutex> lk(mu_);
    return capacity_;
  }

  /// Adjusts the cap; existing overflow is trimmed immediately (0 lifts the
  /// bound without dropping anything).
  void set_capacity(std::size_t capacity) {
    const std::lock_guard<std::mutex> lk(mu_);
    capacity_ = capacity;
    evict_overflow(/*reserve=*/0);
  }

  void clear() {
    const std::lock_guard<std::mutex> lk(mu_);
    entries_.clear();
    stats_ = {};
  }

private:
  struct Entry {
    std::once_flag once;
    std::shared_ptr<const Value> value;
    /// Published after `value` is written inside call_once, so eviction can
    /// test "computed?" without racing the computing thread.
    std::atomic<bool> ready{false};
    uint64_t last_used = 0;
  };

  std::shared_ptr<Entry> entry_for(const Key& key) {
    const std::lock_guard<std::mutex> lk(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) return it->second;
    // Make room before inserting so the fresh (still-computing) entry can
    // never be its own eviction victim.
    evict_overflow(/*reserve=*/1);
    std::shared_ptr<Entry>& slot = entries_[key];
    slot = std::make_shared<Entry>();
    slot->last_used = ++tick_;
    return slot;
  }

  /// Drops least-recently-used computed entries until the index (plus
  /// `reserve` slots about to be filled) respects the capacity. Requires
  /// mu_.
  void evict_overflow(std::size_t reserve) {
    if (capacity_ == 0) return;
    while (entries_.size() + reserve > capacity_) {
      auto victim = entries_.end();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (!it->second->ready.load(std::memory_order_acquire))
          continue; // in flight: not a candidate
        if (victim == entries_.end() ||
            it->second->last_used < victim->second->last_used)
          victim = it;
      }
      if (victim == entries_.end()) return; // everything is in flight
      entries_.erase(victim);
      ++stats_.evictions;
    }
  }

  mutable std::mutex mu_;
  std::map<Key, std::shared_ptr<Entry>> entries_;
  Stats stats_;
  std::size_t capacity_ = 0;
  uint64_t tick_ = 0;
};

} // namespace spmwcet::support
