// Thread-safe get-or-compute memoizer with per-entry once semantics.
//
// The single concurrency pattern behind both the workload registry and the
// harness's ArtifactCache: a mutex-guarded key → entry map where each entry
// is computed exactly once (concurrent first callers block until the one
// compute finishes; a throwing compute leaves the entry uncomputed so the
// next caller retries) and then shared immutably via shared_ptr. clear()
// drops the index only — values already handed out stay valid.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

namespace spmwcet::support {

/// Hit/miss counters shared by every Memoizer instantiation.
struct MemoStats {
  uint64_t hits = 0;   ///< served an already-computed value
  uint64_t misses = 0; ///< ran the compute function
};

template <typename Key, typename Value>
class Memoizer {
public:
  using Stats = MemoStats;

  /// Returns the value for `key`, running `make` on first use.
  std::shared_ptr<const Value> get(const Key& key,
                                   const std::function<Value()>& make) {
    const std::shared_ptr<Entry> entry = entry_for(key);
    bool computed = false;
    std::call_once(entry->once, [&] {
      entry->value = std::make_shared<const Value>(make());
      computed = true;
    });
    const std::lock_guard<std::mutex> lk(mu_);
    if (computed)
      ++stats_.misses;
    else
      ++stats_.hits;
    return entry->value;
  }

  Stats stats() const {
    const std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lk(mu_);
    return entries_.size();
  }

  void clear() {
    const std::lock_guard<std::mutex> lk(mu_);
    entries_.clear();
    stats_ = {};
  }

private:
  struct Entry {
    std::once_flag once;
    std::shared_ptr<const Value> value;
  };

  std::shared_ptr<Entry> entry_for(const Key& key) {
    const std::lock_guard<std::mutex> lk(mu_);
    std::shared_ptr<Entry>& slot = entries_[key];
    if (!slot) slot = std::make_shared<Entry>();
    return slot;
  }

  mutable std::mutex mu_;
  std::map<Key, std::shared_ptr<Entry>> entries_;
  Stats stats_;
};

} // namespace spmwcet::support
