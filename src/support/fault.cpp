#include "support/fault.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace spmwcet::support::fault {

namespace detail {
std::atomic<bool> g_armed{false};
} // namespace detail

namespace {

struct Site {
  bool armed = false;
  double probability = 0.0;
  uint64_t times = 0; ///< max injections; 0 = unlimited
  uint64_t skip = 0;  ///< evaluations that never fire
  uint64_t param = 0; ///< site-specific magnitude (delay ms, …)
  SiteStats counts;
};

struct Registry {
  std::mutex mu;
  uint64_t seed = 0x5eed5eed5eedULL;
  std::map<std::string, Site> sites;
};

Registry& registry() {
  static Registry* r = new Registry(); // leaked: sites may fire at exit
  return *r;
}

void refresh_armed_flag_locked(const Registry& r) {
  bool any = false;
  for (const auto& [name, site] : r.sites) any = any || site.armed;
  detail::g_armed.store(any, std::memory_order_relaxed);
}

uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t fnv1a(const char* s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (; *s != '\0'; ++s) h = (h ^ static_cast<unsigned char>(*s)) *
                              0x100000001b3ULL;
  return h;
}

/// Deterministic per-(seed, site, evaluation-index) draw in [0, 1): the
/// schedule for a site depends only on how many times that site has been
/// reached, never on cross-site or cross-thread interleaving.
double draw(uint64_t seed, const char* site, uint64_t index) {
  const uint64_t bits = splitmix64(seed ^ fnv1a(site) ^ (index * 0x9e37ULL));
  return static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
}

/// One-time arming from the environment, hooked off static initialization
/// so every binary (CLI, tests, benches) honors SPMWCET_FAULTS without
/// opt-in code.
const int g_env_armed = [] {
  const char* env = std::getenv("SPMWCET_FAULTS");
  return env != nullptr ? arm_from_spec(env) : 0;
}();

} // namespace

namespace detail {

bool should_fire(const char* site) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.sites.find(site);
  if (it == r.sites.end() || !it->second.armed) return false;
  Site& s = it->second;
  const uint64_t index = s.counts.evaluations++;
  if (index < s.skip) return false;
  if (s.times != 0 && s.counts.injected >= s.times) return false;
  if (draw(r.seed, site, index) >= s.probability) return false;
  ++s.counts.injected;
  return true;
}

uint64_t site_param(const char* site) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.sites.find(site);
  return it != r.sites.end() ? it->second.param : 0;
}

} // namespace detail

void arm(const std::string& site, double probability, uint64_t times,
         uint64_t skip, uint64_t param) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lk(r.mu);
  Site& s = r.sites[site];
  s.armed = true;
  s.probability = probability < 0.0 ? 0.0 : (probability > 1.0 ? 1.0
                                                               : probability);
  s.times = times;
  s.skip = skip;
  s.param = param;
  s.counts = SiteStats{};
  refresh_armed_flag_locked(r);
}

void disarm(const std::string& site) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.sites.find(site);
  if (it != r.sites.end()) it->second.armed = false;
  refresh_armed_flag_locked(r);
}

void disarm_all() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lk(r.mu);
  for (auto& [name, site] : r.sites) site.armed = false;
  refresh_armed_flag_locked(r);
}

void seed(uint64_t value) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lk(r.mu);
  r.seed = value;
  for (auto& [name, site] : r.sites) site.counts = SiteStats{};
}

SiteStats stats(const std::string& site) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.sites.find(site);
  return it != r.sites.end() ? it->second.counts : SiteStats{};
}

std::map<std::string, SiteStats> all_stats() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lk(r.mu);
  std::map<std::string, SiteStats> out;
  for (const auto& [name, site] : r.sites) out[name] = site.counts;
  return out;
}

int arm_from_spec(const std::string& spec) {
  int armed = 0;
  std::size_t at = 0;
  while (at < spec.size()) {
    std::size_t end = spec.find(',', at);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(at, end - at);
    at = end + 1;
    // Trim surrounding whitespace so multi-line shell quoting works.
    while (!entry.empty() && (entry.front() == ' ' || entry.front() == '\t' ||
                              entry.front() == '\n'))
      entry.erase(entry.begin());
    while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t' ||
                              entry.back() == '\n'))
      entry.pop_back();
    if (entry.empty()) continue;

    const auto warn = [&](const char* why) {
      std::fprintf(stderr, "SPMWCET_FAULTS: ignoring '%s' (%s)\n",
                   entry.c_str(), why);
    };
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      warn("expected site=probability");
      continue;
    }
    const std::string name = entry.substr(0, eq);
    const std::string value_and_mods = entry.substr(eq + 1);

    // Split `prob[:mod[:mod…]]` on colons: first token is the value, the
    // rest are modifiers.
    std::vector<std::string> tokens;
    std::size_t tok_at = 0;
    while (tok_at <= value_and_mods.size()) {
      std::size_t colon = value_and_mods.find(':', tok_at);
      if (colon == std::string::npos) colon = value_and_mods.size();
      tokens.push_back(value_and_mods.substr(tok_at, colon - tok_at));
      tok_at = colon + 1;
    }
    const std::string rest = tokens.front();
    const std::vector<std::string> mods(tokens.begin() + 1, tokens.end());

    errno = 0;
    char* endp = nullptr;
    if (name == "seed") {
      const unsigned long long v = std::strtoull(rest.c_str(), &endp, 10);
      if (endp == rest.c_str() || *endp != '\0' || errno != 0) {
        warn("bad seed value");
        continue;
      }
      seed(v);
      continue;
    }
    const double prob = std::strtod(rest.c_str(), &endp);
    if (endp == rest.c_str() || *endp != '\0' || errno != 0 || prob < 0.0 ||
        prob > 1.0) {
      warn("probability must be in [0, 1]");
      continue;
    }
    uint64_t times = 0, skip = 0, param = 0;
    bool bad_mod = false;
    for (const std::string& mod : mods) {
      const std::size_t meq = mod.find('=');
      const std::string mkey =
          meq == std::string::npos ? mod : mod.substr(0, meq);
      const std::string mval = meq == std::string::npos
                                   ? std::string()
                                   : mod.substr(meq + 1);
      errno = 0;
      const unsigned long long v = std::strtoull(mval.c_str(), &endp, 10);
      const bool numeric =
          !mval.empty() && endp != mval.c_str() && *endp == '\0' && errno == 0;
      if (mkey == "times" && numeric) times = v;
      else if (mkey == "skip" && numeric) skip = v;
      else if (mkey == "ms" && numeric) param = v;
      else bad_mod = true;
    }
    if (bad_mod) {
      warn("unknown modifier (expected times=/skip=/ms=)");
      continue;
    }
    arm(name, prob, times, skip, param);
    ++armed;
  }
  return armed;
}

void maybe_delay(const char* site) {
  if (!fire(site)) return;
  uint64_t ms = detail::site_param(site);
  if (ms == 0) ms = 10;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

} // namespace spmwcet::support::fault
