#include "support/interval.h"

#include <algorithm>

namespace spmwcet {

namespace {
// Saturating multiply of two bounds.
int64_t sat_mul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  const long double p =
      static_cast<long double>(a) * static_cast<long double>(b);
  if (p >= static_cast<long double>(Interval::kInf)) return Interval::kInf;
  if (p <= static_cast<long double>(-Interval::kInf)) return -Interval::kInf;
  return a * b;
}

int64_t sat_add(int64_t a, int64_t b) {
  const int64_t s = a + b; // bounds are <= 2^62, so no UB for one addition
  if (s > Interval::kInf) return Interval::kInf;
  if (s < -Interval::kInf) return -Interval::kInf;
  return s;
}
} // namespace

Interval Interval::join(const Interval& o) const {
  if (is_bottom()) return o;
  if (o.is_bottom()) return *this;
  return range(std::min(lo_, o.lo_), std::max(hi_, o.hi_));
}

Interval Interval::meet(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return {};
  return range(std::max(lo_, o.lo_), std::min(hi_, o.hi_));
}

Interval Interval::widen(const Interval& prev) const {
  if (prev.is_bottom()) return *this;
  if (is_bottom()) return prev;
  const int64_t lo = lo_ < prev.lo_ ? -kInf : lo_;
  const int64_t hi = hi_ > prev.hi_ ? kInf : hi_;
  return range(lo, hi);
}

Interval Interval::add(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return {};
  return range(sat_add(lo_, o.lo_), sat_add(hi_, o.hi_));
}

Interval Interval::sub(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return {};
  return range(sat_add(lo_, -o.hi_), sat_add(hi_, -o.lo_));
}

Interval Interval::neg() const {
  if (is_bottom()) return {};
  return range(-hi_, -lo_);
}

Interval Interval::mul(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return {};
  const int64_t c[4] = {sat_mul(lo_, o.lo_), sat_mul(lo_, o.hi_),
                        sat_mul(hi_, o.lo_), sat_mul(hi_, o.hi_)};
  return range(*std::min_element(c, c + 4), *std::max_element(c, c + 4));
}

Interval Interval::shl(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return {};
  if (o.lo_ < 0 || o.hi_ > 31) return top();
  const Interval lo_f = point(int64_t{1} << o.lo_);
  const Interval hi_f = point(int64_t{1} << o.hi_);
  return mul(lo_f).join(mul(hi_f));
}

Interval Interval::asr(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return {};
  if (o.lo_ < 0 || o.hi_ > 31) return top();
  // Arithmetic shift is a monotone floor division by a power of two.
  auto shift = [](int64_t v, int64_t k) {
    // Floor division semantics match >> for two's complement values.
    const int64_t d = int64_t{1} << k;
    int64_t q = v / d;
    if (v % d != 0 && v < 0) --q;
    return q;
  };
  const int64_t c[4] = {shift(lo_, o.lo_), shift(lo_, o.hi_),
                        shift(hi_, o.lo_), shift(hi_, o.hi_)};
  return range(*std::min_element(c, c + 4), *std::max_element(c, c + 4));
}

Interval Interval::lsr(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return {};
  if (lo_ < 0) return top(); // bit pattern reinterpretation; give up
  return asr(o);
}

Interval Interval::band(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return {};
  const auto a = as_point();
  const auto b = o.as_point();
  if (a && b) return point(*a & *b);
  // x & mask with a constant non-negative mask is bounded by [0, mask]
  // when x is known non-negative or the mask clears the sign bits.
  if (b && *b >= 0) {
    if (lo_ >= 0) return range(0, std::min(hi_, *b));
    return range(0, *b);
  }
  if (a && *a >= 0) {
    if (o.lo_ >= 0) return range(0, std::min(o.hi_, *a));
    return range(0, *a);
  }
  return top();
}

Interval Interval::assume_lt(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return {};
  return meet(range(-kInf, sat_add(o.hi_, -1)));
}

Interval Interval::assume_le(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return {};
  return meet(range(-kInf, o.hi_));
}

Interval Interval::assume_gt(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return {};
  return meet(range(sat_add(o.lo_, 1), kInf));
}

Interval Interval::assume_ge(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return {};
  return meet(range(o.lo_, kInf));
}

Interval Interval::assume_eq(const Interval& o) const { return meet(o); }

Interval Interval::assume_ne(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return {};
  // Only a point on the boundary can be peeled off soundly.
  if (o.is_point()) {
    if (is_point() && lo_ == o.lo_) return {};
    if (lo_ == o.lo_) return range(lo_ + 1, hi_);
    if (hi_ == o.lo_) return range(lo_, hi_ - 1);
  }
  return *this;
}

std::string Interval::to_string() const {
  if (is_bottom()) return "⊥";
  if (is_top()) return "⊤";
  auto bound = [](int64_t v) {
    if (v >= kInf) return std::string("+inf");
    if (v <= -kInf) return std::string("-inf");
    return std::to_string(v);
  };
  return "[" + bound(lo_) + "," + bound(hi_) + "]";
}

} // namespace spmwcet
