// Minimal POSIX stream-socket layer for the networked serve front ends.
//
// Three pieces, deliberately small and transport-symmetric so the serve
// byte loop (api/serve.h) never learns which transport it is on:
//
//  * Socket — RAII ownership of a connected file descriptor. shutdown()
//    is the thread-safe way to unblock a peer thread sleeping in read():
//    close() alone would race fd reuse, shutdown() keeps the descriptor
//    alive but forces EOF on both directions.
//  * Listener — a bound unix-domain or loopback-TCP accept socket whose
//    accept() can be interrupted from another thread (or a signal handler)
//    through a self-pipe: accept() polls the listen fd and the pipe's read
//    end together, and interrupt() writes one byte, which latches — every
//    current and future accept() call returns an invalid Socket.
//  * LineReader / send_all — newline-delimited IO with std::getline
//    semantics ('\n' stripped, a final unterminated line still delivered)
//    and EPIPE-safe full-buffer writes (MSG_NOSIGNAL, short writes
//    retried), so a client vanishing mid-response is an error return, not
//    a SIGPIPE death.
//
// Everything throws spmwcet::Error on setup failures (bind/listen/connect)
// and reports runtime failures (peer gone, interrupt) through return
// values — steady-state IO on an untrusted peer must never throw.
#pragma once

#include <cstdint>
#include <string>

#include "support/diag.h"

namespace spmwcet::support::net {

/// RAII connected-socket descriptor; move-only.
class Socket {
public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Forces EOF in both directions without releasing the descriptor — the
  /// safe cross-thread wakeup for a session blocked in read (the session
  /// itself still owns the fd and closes it on exit).
  void shutdown();
  void close();

private:
  int fd_ = -1;
};

/// A bound, listening accept socket (unix-domain path or loopback TCP).
class Listener {
public:
  /// Binds and listens on a unix-domain socket at `path`. A pre-existing
  /// socket file is connect-probed first: when another server still
  /// answers on it, this throws instead of stealing the live socket; only
  /// a genuinely stale file (nothing accepting) is replaced. The path is
  /// unlinked again on destruction.
  static Listener unix_domain(const std::string& path);

  /// Binds and listens on 127.0.0.1:`port`; 0 picks an ephemeral port
  /// (read it back with port()).
  static Listener tcp_loopback(uint16_t port);

  ~Listener();
  Listener(Listener&&) noexcept;
  Listener& operator=(Listener&&) = delete;
  Listener(const Listener&) = delete;

  /// Blocks until a connection arrives or interrupt() is called; returns
  /// an invalid Socket once interrupted (and for every later call).
  Socket accept();

  /// Latches the interrupt: wakes every accept() caller, current and
  /// future. Only write(2) is used, so this is async-signal-safe.
  void interrupt();

  /// Write end of the interrupt pipe — hand this to a signal handler that
  /// must stop the server (write one byte; equivalent to interrupt()).
  int interrupt_fd() const { return wake_w_.fd(); }

  uint16_t port() const { return port_; }        ///< TCP only (0 for unix)
  const std::string& path() const { return path_; } ///< unix only (else "")

private:
  Listener() = default;

  Socket fd_;
  Socket wake_r_, wake_w_; ///< self-pipe; a pending byte latches interrupt
  std::string path_;
  uint16_t port_ = 0;
};

/// Connects to a unix-domain listener; throws Error on failure.
Socket connect_unix(const std::string& path);

/// Connects to 127.0.0.1:`port`; throws Error on failure.
Socket connect_tcp_loopback(uint16_t port);

/// Why read_line_until() returned without a line.
enum class ReadStatus : uint8_t {
  Line,    ///< `line` holds the next line
  Eof,     ///< peer closed (or read error) and the buffer is drained
  Timeout, ///< no complete line within the timeout (buffer state kept)
  Wake,    ///< the wake fd became readable first (e.g. server drain)
};

/// Buffered newline reader over a connected socket, with std::getline
/// semantics: the '\n' is stripped (a '\r' before it is left in place, as
/// with the stdio serve loop), and a final line without a terminator is
/// still delivered once. Lines beyond `max_line_bytes` are truncated to
/// the cap (the remainder of the oversized line is discarded) — the serve
/// loop answers a parse error instead of buffering unbounded garbage.
class LineReader {
public:
  explicit LineReader(int fd, std::size_t max_line_bytes = 1 << 22)
      : fd_(fd), max_line_(max_line_bytes) {}

  /// False at EOF (or on a read error) once all buffered lines are
  /// drained; never throws. Blocks without bound (no timeout, no wake fd).
  bool read_line(std::string& line);

  /// read_line with a bounded wait: returns Line/Eof like read_line, or
  /// Timeout when no complete line arrived within `timeout_ms`
  /// (-1 = unbounded), or Wake when the wake fd (set_wake_fd) became
  /// readable while no socket data was pending. Already-buffered complete
  /// lines are always delivered first — a wake never drops pipelined
  /// requests that were received before it. Never throws.
  ReadStatus read_line_until(std::string& line, int timeout_ms);

  /// An fd watched alongside the socket (level-triggered, never read from
  /// here) — the server's drain pipe. -1 disables (the default).
  void set_wake_fd(int fd) { wake_fd_ = fd; }
  void clear_wake_fd() { wake_fd_ = -1; }

private:
  int fd_;
  int wake_fd_ = -1;
  std::size_t max_line_;
  std::string buf_;
  std::size_t pos_ = 0;
  bool eof_ = false;
};

/// Writes the whole buffer, retrying short writes; false when the peer is
/// gone (EPIPE/ECONNRESET — never raises SIGPIPE).
bool send_all(int fd, const char* data, std::size_t size);
inline bool send_all(int fd, const std::string& data) {
  return send_all(fd, data.data(), data.size());
}

/// send_all with a bound: gives up (returns false) when the peer's buffer
/// stays full past `timeout_ms` — a reader that stopped reading cannot
/// wedge the writer forever. timeout_ms < 0 waits without bound
/// (identical to send_all).
bool send_all_timeout(int fd, const char* data, std::size_t size,
                      int timeout_ms);
inline bool send_all_timeout(int fd, const std::string& data,
                             int timeout_ms) {
  return send_all_timeout(fd, data.data(), data.size(), timeout_ms);
}

} // namespace spmwcet::support::net
