// Signed 64-bit interval arithmetic used by the WCET value analysis.
//
// Intervals track register contents and address ranges. The domain is the
// classic lattice of closed integer intervals extended with bottom (empty)
// and saturating bounds standing in for +/- infinity.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace spmwcet {

/// A closed interval [lo, hi] over int64_t, or bottom (empty).
///
/// Bounds saturate at +/-kInf; an interval reaching a saturated bound is
/// treated as unbounded on that side by widening. All operations are sound
/// over-approximations of the corresponding concrete 32-bit operations as
/// long as intermediate concrete values do not wrap; wrapping operations
/// (which MiniC code generation never relies on) must go through top().
class Interval {
public:
  static constexpr int64_t kInf = int64_t{1} << 62;

  /// Bottom (empty) interval.
  constexpr Interval() = default;

  /// Singleton [v, v].
  static constexpr Interval point(int64_t v) { return Interval(v, v); }

  /// Closed range [lo, hi]; lo > hi yields bottom.
  static constexpr Interval range(int64_t lo, int64_t hi) {
    return lo > hi ? Interval() : Interval(lo, hi);
  }

  /// Completely unknown value.
  static constexpr Interval top() { return Interval(-kInf, kInf); }

  constexpr bool is_bottom() const { return empty_; }
  constexpr bool is_top() const {
    return !empty_ && lo_ <= -kInf && hi_ >= kInf;
  }
  /// True when the interval is a single concrete value.
  constexpr bool is_point() const { return !empty_ && lo_ == hi_; }

  constexpr int64_t lo() const { return lo_; }
  constexpr int64_t hi() const { return hi_; }

  /// The single value of a point interval.
  std::optional<int64_t> as_point() const {
    if (is_point()) return lo_;
    return std::nullopt;
  }

  constexpr bool contains(int64_t v) const {
    return !empty_ && lo_ <= v && v <= hi_;
  }
  constexpr bool contains(const Interval& o) const {
    return o.empty_ || (!empty_ && lo_ <= o.lo_ && o.hi_ <= hi_);
  }

  constexpr bool operator==(const Interval& o) const {
    if (empty_ != o.empty_) return false;
    if (empty_) return true;
    return lo_ == o.lo_ && hi_ == o.hi_;
  }

  /// Least upper bound (union hull).
  Interval join(const Interval& o) const;
  /// Greatest lower bound (intersection).
  Interval meet(const Interval& o) const;
  /// Widening: bounds that grew since `prev` jump to infinity.
  Interval widen(const Interval& prev) const;

  Interval add(const Interval& o) const;
  Interval sub(const Interval& o) const;
  Interval neg() const;
  Interval mul(const Interval& o) const;
  /// Logical shift left by a constant amount interval.
  Interval shl(const Interval& o) const;
  /// Arithmetic shift right.
  Interval asr(const Interval& o) const;
  /// Logical shift right of a non-negative value (top otherwise).
  Interval lsr(const Interval& o) const;
  /// Bitwise AND: precise for points, top-aware bound for masks.
  Interval band(const Interval& o) const;

  /// Refine assuming (this < o), (this <= o), etc. Used on branch edges.
  Interval assume_lt(const Interval& o) const;
  Interval assume_le(const Interval& o) const;
  Interval assume_gt(const Interval& o) const;
  Interval assume_ge(const Interval& o) const;
  Interval assume_eq(const Interval& o) const;
  Interval assume_ne(const Interval& o) const;

  std::string to_string() const;

private:
  constexpr Interval(int64_t lo, int64_t hi)
      : lo_(clamp(lo)), hi_(clamp(hi)), empty_(false) {}

  static constexpr int64_t clamp(int64_t v) {
    if (v > kInf) return kInf;
    if (v < -kInf) return -kInf;
    return v;
  }

  int64_t lo_ = 0;
  int64_t hi_ = 0;
  bool empty_ = true;
};

} // namespace spmwcet
