// Cooperative request deadlines.
//
// A Deadline is an optional absolute point on the steady clock. The request
// path carries one from the wire ("deadline_ms", relative to request
// arrival) down through the Engine into the pipeline workers, which call
// check() at stage boundaries — profiling, simulation, analysis are each
// finite, so checking between them bounds how long an expired request can
// keep its admission slot without peppering hot loops with clock reads.
//
// Expiry is reported by throwing DeadlineExceededError (a spmwcet::Error,
// so every existing catch site still contains it); the Engine maps it to
// the typed ErrorCode::DeadlineExceeded, which the wire layer serializes
// as a structured error response — the session lives on.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "support/diag.h"

namespace spmwcet::support {

/// A request ran past its deadline; carries the pipeline stage that
/// noticed. Derived from Error so legacy catch sites keep working, but
/// distinguishable so the Engine can answer with the typed error code.
class DeadlineExceededError : public Error {
public:
  explicit DeadlineExceededError(const std::string& stage)
      : Error("deadline exceeded (" + stage + ")"), stage_(stage) {}

  /// Rebuilds the exception from an already-rendered what() message — the
  /// sweep runner round-trips it across the worker-thread boundary as a
  /// string. stage() is empty on this path.
  struct RawMessage {};
  DeadlineExceededError(const std::string& message, RawMessage)
      : Error(message) {}

  const std::string& stage() const { return stage_; }

private:
  std::string stage_;
};

/// Optional absolute deadline on the steady clock. Default-constructed =
/// unbounded (every check is free-ish and never fires), so threading a
/// Deadline through a path costs nothing for requests that set none.
class Deadline {
public:
  Deadline() = default;

  /// The deadline `ms` milliseconds from now; ms == 0 means unbounded
  /// (the wire spelling "no deadline_ms field / 0" maps straight here).
  static Deadline after_ms(uint32_t ms) {
    Deadline d;
    if (ms > 0)
      d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  bool bounded() const { return at_.has_value(); }

  bool expired() const {
    return at_.has_value() && std::chrono::steady_clock::now() >= *at_;
  }

  /// Milliseconds until expiry, clamped to >= 0; INT64_MAX when unbounded.
  int64_t remaining_ms() const {
    if (!at_.has_value()) return INT64_MAX;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        *at_ - std::chrono::steady_clock::now());
    return left.count() > 0 ? left.count() : 0;
  }

  /// Throws DeadlineExceededError naming `stage` when expired.
  void check(const char* stage) const {
    if (expired()) throw DeadlineExceededError(stage);
  }

private:
  std::optional<std::chrono::steady_clock::time_point> at_;
};

} // namespace spmwcet::support
