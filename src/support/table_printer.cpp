#include "support/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/diag.h"

namespace spmwcet {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  SPMWCET_CHECK(!header_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  SPMWCET_CHECK_MSG(cells.size() == header_.size(),
                    "row arity does not match header");
  rows_.push_back(std::move(cells));
}

void TablePrinter::render(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto line = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  line(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 == width.size() ? 0 : 2);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) line(row);
}

void TablePrinter::render_csv(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << row[c] << (c + 1 == row.size() ? "\n" : ",");
  };
  line(header_);
  for (const auto& row : rows_) line(row);
}

std::string TablePrinter::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

std::string TablePrinter::fmt(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string TablePrinter::fmt(uint64_t v) { return std::to_string(v); }
std::string TablePrinter::fmt(int64_t v) { return std::to_string(v); }

} // namespace spmwcet
