#include "support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace spmwcet::support::json {

bool Value::as_bool() const {
  SPMWCET_CHECK_MSG(kind_ == Kind::Bool, "json: not a bool");
  return bool_;
}

int64_t Value::as_int() const {
  SPMWCET_CHECK_MSG(kind_ == Kind::Int, "json: not an integer");
  return int_;
}

double Value::as_double() const {
  SPMWCET_CHECK_MSG(is_number(), "json: not a number");
  return kind_ == Kind::Int ? static_cast<double>(int_) : double_;
}

const std::string& Value::as_string() const {
  SPMWCET_CHECK_MSG(kind_ == Kind::String, "json: not a string");
  return str_;
}

const std::vector<Value>& Value::items() const {
  SPMWCET_CHECK_MSG(kind_ == Kind::Array, "json: not an array");
  return arr_;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  SPMWCET_CHECK_MSG(kind_ == Kind::Object, "json: not an object");
  return obj_;
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

void Value::push(Value v) {
  SPMWCET_CHECK_MSG(kind_ == Kind::Array, "json: push on non-array");
  arr_.push_back(std::move(v));
}

void Value::set(const std::string& key, Value v) {
  SPMWCET_CHECK_MSG(kind_ == Kind::Object, "json: set on non-object");
  obj_.emplace_back(key, std::move(v));
}

std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string Value::dump() const {
  switch (kind_) {
    case Kind::Null: return "null";
    case Kind::Bool: return bool_ ? "true" : "false";
    case Kind::Int: return std::to_string(int_);
    case Kind::Double: {
      // %.17g round-trips every finite double; JSON has no NaN/Inf, so those
      // (which the pipeline never produces) degrade to null.
      if (!std::isfinite(double_)) return "null";
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", double_);
      return buf;
    }
    case Kind::String: return quote(str_);
    case Kind::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) out += ',';
        out += arr_[i].dump();
      }
      out += ']';
      return out;
    }
    case Kind::Object: {
      std::string out = "{";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i != 0) out += ',';
        out += quote(obj_[i].first);
        out += ':';
        out += obj_[i].second.dump();
      }
      out += '}';
      return out;
    }
  }
  return "null"; // unreachable
}

namespace {

class Parser {
public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    if (at_ != text_.size()) fail("trailing characters after document");
    return v;
  }

private:
  // Recursion bound: the parser descends one frame per container level, so
  // without a cap a hostile line of 100k '[' would overflow the stack and
  // kill a resident serve process instead of earning an error response.
  // Wire messages nest a handful of levels; 64 is generous.
  static constexpr int kMaxDepth = 64;
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError("json: " + why + " at offset " + std::to_string(at_));
  }

  void skip_ws() {
    while (at_ < text_.size() &&
           (text_[at_] == ' ' || text_[at_] == '\t' || text_[at_] == '\n' ||
            text_[at_] == '\r'))
      ++at_;
  }

  char peek() {
    if (at_ >= text_.size()) fail("unexpected end of input");
    return text_[at_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++at_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(at_, n, lit) != 0) return false;
    at_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': {
        if (depth_ >= kMaxDepth) fail("nesting too deep");
        ++depth_;
        Value v = parse_object();
        --depth_;
        return v;
      }
      case '[': {
        if (depth_ >= kMaxDepth) fail("nesting too deep");
        ++depth_;
        Value v = parse_array();
        --depth_;
        return v;
      }
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value obj = Value::object();
    skip_ws();
    if (peek() == '}') { ++at_; return obj; }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') { ++at_; continue; }
      if (c == '}') { ++at_; return obj; }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value arr = Value::array();
    skip_ws();
    if (peek() == ']') { ++at_; return arr; }
    while (true) {
      arr.push(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') { ++at_; continue; }
      if (c == ']') { ++at_; return arr; }
      fail("expected ',' or ']' in array");
    }
  }

  uint32_t parse_hex4() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++at_;
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<uint32_t>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return v;
  }

  void append_utf8(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (at_ >= text_.size()) fail("unterminated string");
      const char c = text_[at_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') { out += c; continue; }
      const char e = peek();
      ++at_;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          uint32_t cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: must be followed by \uDC00-\uDFFF.
            if (at_ + 1 >= text_.size() || text_[at_] != '\\' ||
                text_[at_ + 1] != 'u')
              fail("lone high surrogate");
            at_ += 2;
            const uint32_t lo = parse_hex4();
            if (lo < 0xdc00 || lo > 0xdfff) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = at_;
    if (peek() == '-') ++at_;
    if (at_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[at_])))
      fail("invalid number");
    while (at_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[at_])))
      ++at_;
    bool integral = true;
    if (at_ < text_.size() && text_[at_] == '.') {
      integral = false;
      ++at_;
      if (at_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[at_])))
        fail("invalid number");
      while (at_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[at_])))
        ++at_;
    }
    if (at_ < text_.size() && (text_[at_] == 'e' || text_[at_] == 'E')) {
      integral = false;
      ++at_;
      if (at_ < text_.size() && (text_[at_] == '+' || text_[at_] == '-')) ++at_;
      if (at_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[at_])))
        fail("invalid number");
      while (at_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[at_])))
        ++at_;
    }
    const std::string tok = text_.substr(start, at_ - start);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0')
        return Value(static_cast<int64_t>(v));
      // Out of int64 range: fall through to double.
    }
    errno = 0;
    const double d = std::strtod(tok.c_str(), nullptr);
    return Value(d);
  }

  const std::string& text_;
  std::size_t at_ = 0;
  int depth_ = 0;
};

} // namespace

Value parse(const std::string& text) { return Parser(text).run(); }

} // namespace spmwcet::support::json
