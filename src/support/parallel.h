// Minimal data-parallel loop used by the sweep engine and the benches.
//
// Indices are claimed from a shared atomic counter (work stealing), so
// uneven task costs balance across workers without any static partitioning.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace spmwcet::support {

/// Maps the user-facing jobs knob to a worker count: 0 = all hardware
/// threads, and a platform that cannot report its core count gets 1.
inline unsigned resolve_jobs(unsigned jobs) {
  if (jobs == 0) jobs = std::thread::hardware_concurrency();
  return jobs == 0 ? 1u : jobs;
}

/// Calls fn(i) for every i in [0, count) across `jobs` workers; with one
/// worker (or count <= 1) the calls happen in place on the calling thread.
/// fn must be safe to call concurrently for distinct indices and must not
/// let exceptions escape when running on a pool (they would terminate).
template <typename Fn>
void parallel_for(std::size_t count, unsigned jobs, Fn&& fn) {
  const std::size_t workers =
      std::min<std::size_t>(resolve_jobs(jobs), count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  for (std::thread& t : pool) t.join();
}

} // namespace spmwcet::support
