// Deterministic fault injection for robustness testing.
//
// A process-wide registry of named fault *sites* — fixed points in the IO
// and compute paths (`socket.read.short`, `socket.write.fail`,
// `listener.accept.fail`, `engine.compute.throw`, …) that consult the
// registry before acting. A site that is not armed costs one relaxed
// atomic load (the global armed flag) and no branch into the registry, so
// the instrumentation ships in production builds; an armed site draws a
// deterministic pseudo-random decision from (seed, site name, per-site
// evaluation index), so a seeded schedule replays identically regardless
// of thread interleaving *per site*.
//
// Arming: programmatically via arm()/disarm_all() (tests), or through the
// SPMWCET_FAULTS environment variable at process start:
//
//   SPMWCET_FAULTS="seed=42,socket.read.short=0.05,
//                   engine.compute.throw=0.01:times=3:skip=10:ms=20"
//
// Entries are comma-separated `site=probability` with optional
// colon-separated modifiers: `times=N` (stop after N injections,
// 0 = unlimited), `skip=N` (first N evaluations never fire), `ms=N`
// (site-specific magnitude — the sleep for *.delay sites). Malformed
// entries are skipped with a warning on stderr; arming must never be able
// to kill the process it is meant to harden.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace spmwcet::support::fault {

/// Per-site accounting, readable while armed (stats survive disarm_all
/// until the next arm of the same site).
struct SiteStats {
  uint64_t evaluations = 0; ///< times the site was reached while armed
  uint64_t injected = 0;    ///< times the fault actually fired
};

/// Arms `site`: each evaluation past the first `skip` fires with
/// `probability` (clamped to [0,1]), at most `times` injections
/// (0 = unlimited). `param` is the site-specific magnitude (delay
/// milliseconds for *.delay sites; ignored elsewhere).
void arm(const std::string& site, double probability, uint64_t times = 0,
         uint64_t skip = 0, uint64_t param = 0);

/// Disarms one site / every site. Counters are kept until re-armed so a
/// test can disarm first and read totals afterwards.
void disarm(const std::string& site);
void disarm_all();

/// Reseeds the deterministic decision stream and resets every site's
/// counters (a schedule is only replayable from a clean start).
void seed(uint64_t value);

/// Stats for one site (zeros when never armed) / every site ever armed.
SiteStats stats(const std::string& site);
std::map<std::string, SiteStats> all_stats();

/// Arms sites from a spec string (the SPMWCET_FAULTS syntax above);
/// returns how many sites were armed. Malformed entries warn and are
/// skipped. Exposed for tests; the env variable goes through here once at
/// process start.
int arm_from_spec(const std::string& spec);

namespace detail {
extern std::atomic<bool> g_armed; ///< any site armed, relaxed hot-path guard
bool should_fire(const char* site);
uint64_t site_param(const char* site);
} // namespace detail

/// True when any site is armed. One relaxed load; this is the whole cost
/// of a disarmed fault site.
inline bool enabled() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// The hook instrumented code calls: false (without touching the
/// registry) when nothing is armed, otherwise the site's deterministic
/// decision for this evaluation.
inline bool fire(const char* site) {
  return enabled() && detail::should_fire(site);
}

/// Convenience for delay sites: when `site` fires, sleeps its `param`
/// milliseconds (default 10 when the site was armed without one).
void maybe_delay(const char* site);

} // namespace spmwcet::support::fault
