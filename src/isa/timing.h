// The memory and execution timing model — the single source of truth shared
// by the simulator and the WCET analyzer.
//
// This reproduces Table 1 of the paper (ATMEL AT91EB01-like board):
//
//   Access width        Main memory   Scratchpad
//   byte  (8 bit)            2            1
//   half (16 bit)            2            1
//   word (32 bit)            4            1
//
// i.e. one cycle for the access itself plus 1 waitstate for 8/16-bit main
// memory accesses and 3 waitstates for 32-bit ones; the scratchpad always
// answers in a single cycle. A unified cache (16-byte lines of four 32-bit
// words) answers hits in 1 cycle; a miss triggers a line fill of four
// 32-bit main-memory reads (4 * 4 = 16 cycles, no burst support) plus the
// delivery cycle, 17 cycles total. Stores are write-through/no-allocate and
// always pay the main-memory cost for their width.
//
// Because simulator and analyzer use exactly these constants, the WCET of a
// scratchpad configuration is exact up to path overestimation — mirroring
// the paper, where the only WCET/ACET gap in the scratchpad case stems from
// typical-versus-worst-case input data.
#pragma once

#include <cstdint>

#include "isa/instruction.h"

namespace spmwcet::isa {

/// Memory class of an address, as assigned by the linker's region map.
enum class MemClass : uint8_t {
  MainMemory, ///< external memory with width-dependent waitstates
  Scratchpad, ///< on-chip SPM, single-cycle, never cached
};

/// Cycle counts of the memory hierarchy (paper Table 1).
struct MemTiming {
  /// Cycles for an uncached access of `bytes` in {1,2,4} to main memory.
  static constexpr uint32_t main_memory(uint32_t bytes) {
    return bytes == 4 ? 4 : 2;
  }
  /// Cycles for any scratchpad access.
  static constexpr uint32_t scratchpad() { return 1; }
  /// Cycles for a cache hit.
  static constexpr uint32_t cache_hit() { return 1; }
  /// Cycles for a cache miss: delivery + line fill (4 words, no burst).
  static constexpr uint32_t cache_miss(uint32_t line_bytes = 16) {
    return 1 + (line_bytes / 4) * main_memory(4);
  }
  /// Cycles for an uncached access by memory class.
  static constexpr uint32_t uncached(MemClass cls, uint32_t bytes) {
    return cls == MemClass::Scratchpad ? scratchpad() : main_memory(bytes);
  }
};

/// Extra execution cycles beyond memory accesses, modelled after ARM7TDMI
/// behaviour (pipeline refill on taken branches, iterative multiply/divide).
struct ExecTiming {
  static constexpr uint32_t taken_branch_penalty = 2; // B, taken BCC
  static constexpr uint32_t call_penalty = 2;         // BL (after both fetches)
  static constexpr uint32_t return_penalty = 2;       // POP {...,pc}
  static constexpr uint32_t mul_extra = 3;
  static constexpr uint32_t div_extra = 18;

  /// Non-memory extra cycles of one instruction, excluding branch penalties
  /// (the penalty applies only on the taken edge and is attributed to edges
  /// by both the simulator and the analyzer).
  static uint32_t compute_extra(const Instr& ins);
};

} // namespace spmwcet::isa
