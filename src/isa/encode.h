// Binary encoder for T16 instructions (Instr -> 16-bit halfword).
#pragma once

#include <cstdint>

#include "isa/instruction.h"

namespace spmwcet::isa {

/// Encodes a single decoded instruction into its 16-bit binary form.
/// Throws ProgramError if a field is out of range (e.g. an immediate that
/// does not fit); the linker relies on this to detect missed relaxations.
/// A BL pair must be encoded as two Instr values (BL_HI then BL_LO).
uint16_t encode(const Instr& ins);

/// Splits a 22-bit signed halfword offset into the BL_HI/BL_LO pair.
/// `soff22` is relative to the BL_HI address per branch_target semantics.
void encode_bl(int32_t soff22, Instr& hi, Instr& lo);

} // namespace spmwcet::isa
