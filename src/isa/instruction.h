// T16: a THUMB-like 16-bit instruction set.
//
// T16 preserves the properties of ARM7 THUMB that the paper's memory-timing
// study depends on:
//   * all instructions are 16-bit (one halfword fetch each), except BL,
//     which is a pair of halfwords as in THUMB;
//   * 32-bit constants and symbol addresses are loaded from literal pools
//     placed in the code region (LDR_LIT), so the code region contains both
//     16-bit instruction fetches and 32-bit data reads;
//   * eight general-purpose registers r0..r7 plus sp, lr and pc;
//   * CMP/CMPI set the NZCV flags; conditional branches test them.
//
// The in-memory representation is a decoded `Instr` struct; `encode.h` and
// `decode.h` convert to/from the 16-bit binary format documented per opcode
// below. Register fields are 3 bits wide and only name r0..r7; sp/lr/pc are
// reachable only through dedicated opcodes (LDR_SP, PUSH/POP, ...), as in
// the THUMB subset the paper's compiler emits.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace spmwcet::isa {

/// General-purpose register index r0..r7.
using Reg = uint8_t;
inline constexpr Reg kNumRegs = 8;

/// Major opcodes, value == 5-bit field in encoding bits [15:11].
enum class Op : uint8_t {
  MOVI = 0,   // rd[10:8] imm8[7:0]        rd = imm8
  ADDI = 1,   // rd[10:8] imm8[7:0]        rd += imm8
  SUBI = 2,   // rd[10:8] imm8[7:0]        rd -= imm8
  CMPI = 3,   // rd[10:8] imm8[7:0]        flags(rd - imm8)
  ALU = 4,    // sub[10:7] rm[5:3] rd[2:0] rd = rd <sub> rm   (see AluOp)
  ADD3 = 5,   // rm[8:6] rn[5:3] rd[2:0]   rd = rn + rm
  SUB3 = 6,   // rm[8:6] rn[5:3] rd[2:0]   rd = rn - rm
  ADDI3 = 7,  // imm3[8:6] rn[5:3] rd[2:0] rd = rn + imm3
  SUBI3 = 8,  // imm3[8:6] rn[5:3] rd[2:0] rd = rn - imm3
  SHIFTI = 9, // sub[10:9] imm5[8:4] rd[2:0] rd = rd <shift> imm5 (see ShiftOp)
  LDR = 10,   // imm5[10:6] rn[5:3] rd[2:0] rd = mem32[rn + imm5*4]
  STR = 11,   // imm5[10:6] rn[5:3] rd[2:0] mem32[rn + imm5*4] = rd
  LDRH = 12,  // imm5[10:6] rn[5:3] rd[2:0] rd = zext(mem16[rn + imm5*2])
  STRH = 13,  //                            mem16[rn + imm5*2] = rd
  LDRB = 14,  // imm5[10:6] rn[5:3] rd[2:0] rd = zext(mem8[rn + imm5])
  STRB = 15,  //                            mem8[rn + imm5] = rd
  LDRSH = 16, // imm5[10:6] rn[5:3] rd[2:0] rd = sext(mem16[rn + imm5*2])
  LDRSB = 17, // imm5[10:6] rn[5:3] rd[2:0] rd = sext(mem8[rn + imm5])
  LDR_LIT = 18, // rd[10:8] imm8[7:0]      rd = mem32[litbase(pc) + imm8*4]
  ADR = 19,     // rd[10:8] imm8[7:0]      rd = litbase(pc) + imm8*4
  LDR_SP = 20,  // rd[10:8] imm8[7:0]      rd = mem32[sp + imm8*4]
  STR_SP = 21,  // rd[10:8] imm8[7:0]      mem32[sp + imm8*4] = rd
  ADJSP = 22,   // S[10] imm7[6:0]         sp += (S ? -1 : +1) * imm7*4
  PUSH = 23,    // R[8] list[7:0]          push {list}, +lr if R
  POP = 24,     // R[8] list[7:0]          pop {list}, +pc if R (return)
  BCC = 25,     // cond[10:8] soff8[7:0]   if cond: pc = addr + 4 + soff*2
  B = 26,       // soff11[10:0]            pc = addr + 4 + soff*2
  BL_HI = 27,   // off[10:0]               high half of 22-bit BL offset
  BL_LO = 28,   // off[10:0]               low half; lr = addr_after_pair
  LDX = 29,     // sub[10:9] rm[8:6] rn[5:3] rd[2:0] rd = mem[rn + rm] (LdxOp)
  STX = 30,     // sub[10:9] rm[8:6] rn[5:3] rd[2:0] mem[rn + rm] = rd (StxOp)
  SYS = 31,     // fn[10:8] rd[2:0]        NOP / HALT / OUT rd (SysFn)
};

/// Two-address register-register ALU operations (Op::ALU sub field).
enum class AluOp : uint8_t {
  ADD = 0,
  SUB = 1,
  AND = 2,
  ORR = 3,
  EOR = 4,
  LSL = 5,
  LSR = 6,
  ASR = 7,
  MUL = 8,
  CMP = 9, // flags only, rd unchanged
  MOV = 10,
  NEG = 11,
  MVN = 12,
  SDIV = 13,
  UDIV = 14,
};
inline constexpr uint8_t kNumAluOps = 15;

/// Immediate shifts (Op::SHIFTI sub field).
enum class ShiftOp : uint8_t { LSL = 0, LSR = 1, ASR = 2 };

/// Register-offset load widths (Op::LDX sub field).
enum class LdxOp : uint8_t { W = 0, H = 1, B = 2, SH = 3 };
/// Register-offset store widths (Op::STX sub field).
enum class StxOp : uint8_t { W = 0, H = 1, B = 2 };

/// Branch conditions (Op::BCC cond field), ARM semantics over NZCV.
enum class Cond : uint8_t {
  EQ = 0, // Z
  NE = 1, // !Z
  LT = 2, // N != V
  GE = 3, // N == V
  LE = 4, // Z || N != V
  GT = 5, // !Z && N == V
  LO = 6, // !C  (unsigned <)
  HS = 7, // C   (unsigned >=)
};
inline constexpr uint8_t kNumConds = 8;

/// System functions (Op::SYS fn field).
enum class SysFn : uint8_t { NOP = 0, HALT = 1, OUT = 2 };

/// A decoded instruction. Fields not used by an opcode are zero.
///
/// `imm` holds the unscaled immediate field (e.g. the word index for LDR,
/// the signed halfword offset for branches, the register list for PUSH/POP).
struct Instr {
  Op op = Op::SYS;
  uint8_t sub = 0; // AluOp/ShiftOp/LdxOp/StxOp/Cond/SysFn/flag bit, per op
  Reg rd = 0;
  Reg rn = 0;
  Reg rm = 0;
  int32_t imm = 0;

  friend bool operator==(const Instr&, const Instr&) = default;
};

/// Number of bytes an instruction occupies in the image (2, or 4 for the
/// BL pair when counted from its BL_HI half).
constexpr uint32_t instr_size(Op op) { return op == Op::BL_HI ? 4 : 2; }

/// Literal-pool base for a pc-relative LDR_LIT/ADR at address `iaddr`:
/// the word-aligned address at or after the next instruction.
constexpr uint32_t lit_base(uint32_t iaddr) { return (iaddr + 2 + 3) & ~3u; }

/// Branch target of a BCC/B whose signed halfword offset is `soff`.
constexpr uint32_t branch_target(uint32_t iaddr, int32_t soff) {
  return iaddr + 4 + static_cast<uint32_t>(soff * 2);
}

/// Inverse of branch_target: halfword offset to reach `target` from `iaddr`.
constexpr int32_t branch_offset(uint32_t iaddr, uint32_t target) {
  return (static_cast<int32_t>(target) - static_cast<int32_t>(iaddr) - 4) / 2;
}

/// Condition negation (used for branch relaxation).
Cond negate(Cond c);

/// Memory access width in bytes for load/store opcodes; 0 for non-memory.
/// PUSH/POP/ADJSP are handled separately (word accesses).
uint32_t mem_access_bytes(const Instr& ins);

/// Classification helpers used by the CFG reconstructor and the timing
/// model.
bool is_load(const Instr& ins);
bool is_store(const Instr& ins);
bool is_branch(const Instr& ins);       // BCC, B, BL_HI, POP{pc}
bool is_cond_branch(const Instr& ins);  // BCC only
bool is_call(const Instr& ins);         // BL_HI
bool is_return(const Instr& ins);       // POP with pc bit
bool is_halt(const Instr& ins);         // SYS HALT
bool sets_flags(const Instr& ins);      // CMPI, ALU.CMP

/// Number of registers transferred by a PUSH/POP, including lr/pc.
uint32_t transfer_count(const Instr& ins);

const char* to_string(Op op);
const char* to_string(AluOp op);
const char* to_string(Cond c);

} // namespace spmwcet::isa
