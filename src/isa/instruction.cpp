#include "isa/instruction.h"

#include "support/diag.h"

namespace spmwcet::isa {

Cond negate(Cond c) {
  switch (c) {
    case Cond::EQ: return Cond::NE;
    case Cond::NE: return Cond::EQ;
    case Cond::LT: return Cond::GE;
    case Cond::GE: return Cond::LT;
    case Cond::LE: return Cond::GT;
    case Cond::GT: return Cond::LE;
    case Cond::LO: return Cond::HS;
    case Cond::HS: return Cond::LO;
  }
  SPMWCET_CHECK(false);
}

uint32_t mem_access_bytes(const Instr& ins) {
  switch (ins.op) {
    case Op::LDR:
    case Op::STR:
    case Op::LDR_LIT:
    case Op::LDR_SP:
    case Op::STR_SP:
      return 4;
    case Op::LDRH:
    case Op::STRH:
    case Op::LDRSH:
      return 2;
    case Op::LDRB:
    case Op::STRB:
    case Op::LDRSB:
      return 1;
    case Op::LDX:
      switch (static_cast<LdxOp>(ins.sub)) {
        case LdxOp::W: return 4;
        case LdxOp::H:
        case LdxOp::SH: return 2;
        case LdxOp::B: return 1;
      }
      return 0;
    case Op::STX:
      switch (static_cast<StxOp>(ins.sub)) {
        case StxOp::W: return 4;
        case StxOp::H: return 2;
        case StxOp::B: return 1;
      }
      return 0;
    default:
      return 0;
  }
}

bool is_load(const Instr& ins) {
  switch (ins.op) {
    case Op::LDR:
    case Op::LDRH:
    case Op::LDRB:
    case Op::LDRSH:
    case Op::LDRSB:
    case Op::LDR_LIT:
    case Op::LDR_SP:
    case Op::LDX:
      return true;
    default:
      return false;
  }
}

bool is_store(const Instr& ins) {
  switch (ins.op) {
    case Op::STR:
    case Op::STRH:
    case Op::STRB:
    case Op::STR_SP:
    case Op::STX:
      return true;
    default:
      return false;
  }
}

bool is_branch(const Instr& ins) {
  return ins.op == Op::BCC || ins.op == Op::B || ins.op == Op::BL_HI ||
         is_return(ins);
}

bool is_cond_branch(const Instr& ins) { return ins.op == Op::BCC; }

bool is_call(const Instr& ins) { return ins.op == Op::BL_HI; }

bool is_return(const Instr& ins) {
  return ins.op == Op::POP && ins.sub != 0;
}

bool is_halt(const Instr& ins) {
  return ins.op == Op::SYS && static_cast<SysFn>(ins.sub) == SysFn::HALT;
}

bool sets_flags(const Instr& ins) {
  return ins.op == Op::CMPI ||
         (ins.op == Op::ALU && static_cast<AluOp>(ins.sub) == AluOp::CMP);
}

uint32_t transfer_count(const Instr& ins) {
  SPMWCET_CHECK(ins.op == Op::PUSH || ins.op == Op::POP);
  uint32_t n = ins.sub != 0 ? 1u : 0u; // lr or pc
  for (uint32_t list = static_cast<uint32_t>(ins.imm) & 0xffu; list != 0;
       list &= list - 1)
    ++n;
  return n;
}

const char* to_string(Op op) {
  switch (op) {
    case Op::MOVI: return "movi";
    case Op::ADDI: return "addi";
    case Op::SUBI: return "subi";
    case Op::CMPI: return "cmpi";
    case Op::ALU: return "alu";
    case Op::ADD3: return "add3";
    case Op::SUB3: return "sub3";
    case Op::ADDI3: return "addi3";
    case Op::SUBI3: return "subi3";
    case Op::SHIFTI: return "shifti";
    case Op::LDR: return "ldr";
    case Op::STR: return "str";
    case Op::LDRH: return "ldrh";
    case Op::STRH: return "strh";
    case Op::LDRB: return "ldrb";
    case Op::STRB: return "strb";
    case Op::LDRSH: return "ldrsh";
    case Op::LDRSB: return "ldrsb";
    case Op::LDR_LIT: return "ldr.lit";
    case Op::ADR: return "adr";
    case Op::LDR_SP: return "ldr.sp";
    case Op::STR_SP: return "str.sp";
    case Op::ADJSP: return "adjsp";
    case Op::PUSH: return "push";
    case Op::POP: return "pop";
    case Op::BCC: return "bcc";
    case Op::B: return "b";
    case Op::BL_HI: return "bl";
    case Op::BL_LO: return "bl.lo";
    case Op::LDX: return "ldx";
    case Op::STX: return "stx";
    case Op::SYS: return "sys";
  }
  return "?";
}

const char* to_string(AluOp op) {
  switch (op) {
    case AluOp::ADD: return "add";
    case AluOp::SUB: return "sub";
    case AluOp::AND: return "and";
    case AluOp::ORR: return "orr";
    case AluOp::EOR: return "eor";
    case AluOp::LSL: return "lsl";
    case AluOp::LSR: return "lsr";
    case AluOp::ASR: return "asr";
    case AluOp::MUL: return "mul";
    case AluOp::CMP: return "cmp";
    case AluOp::MOV: return "mov";
    case AluOp::NEG: return "neg";
    case AluOp::MVN: return "mvn";
    case AluOp::SDIV: return "sdiv";
    case AluOp::UDIV: return "udiv";
  }
  return "?";
}

const char* to_string(Cond c) {
  switch (c) {
    case Cond::EQ: return "eq";
    case Cond::NE: return "ne";
    case Cond::LT: return "lt";
    case Cond::GE: return "ge";
    case Cond::LE: return "le";
    case Cond::GT: return "gt";
    case Cond::LO: return "lo";
    case Cond::HS: return "hs";
  }
  return "?";
}

} // namespace spmwcet::isa
