#include "isa/disasm.h"

#include <sstream>

#include "isa/decode.h"

namespace spmwcet::isa {

namespace {
std::string reg(Reg r) { return "r" + std::to_string(r); }
std::string hex(uint32_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}
std::string reglist(uint32_t list, const char* extra) {
  std::string s = "{";
  bool first = true;
  for (unsigned r = 0; r < 8; ++r) {
    if (list & (1u << r)) {
      if (!first) s += ",";
      s += "r" + std::to_string(r);
      first = false;
    }
  }
  if (extra[0] != '\0') {
    if (!first) s += ",";
    s += extra;
  }
  return s + "}";
}
} // namespace

std::string disassemble(const Instr& ins, uint32_t addr, const Instr* bl_lo) {
  std::ostringstream os;
  switch (ins.op) {
    case Op::MOVI:
      os << "mov " << reg(ins.rd) << ", #" << ins.imm;
      break;
    case Op::ADDI:
      os << "add " << reg(ins.rd) << ", #" << ins.imm;
      break;
    case Op::SUBI:
      os << "sub " << reg(ins.rd) << ", #" << ins.imm;
      break;
    case Op::CMPI:
      os << "cmp " << reg(ins.rd) << ", #" << ins.imm;
      break;
    case Op::ALU: {
      const auto a = static_cast<AluOp>(ins.sub);
      if (a == AluOp::NEG || a == AluOp::MVN)
        os << to_string(a) << " " << reg(ins.rd) << ", " << reg(ins.rm);
      else
        os << to_string(a) << " " << reg(ins.rd) << ", " << reg(ins.rm);
      break;
    }
    case Op::ADD3:
      os << "add " << reg(ins.rd) << ", " << reg(ins.rn) << ", " << reg(ins.rm);
      break;
    case Op::SUB3:
      os << "sub " << reg(ins.rd) << ", " << reg(ins.rn) << ", " << reg(ins.rm);
      break;
    case Op::ADDI3:
      os << "add " << reg(ins.rd) << ", " << reg(ins.rn) << ", #" << ins.imm;
      break;
    case Op::SUBI3:
      os << "sub " << reg(ins.rd) << ", " << reg(ins.rn) << ", #" << ins.imm;
      break;
    case Op::SHIFTI: {
      static const char* names[] = {"lsl", "lsr", "asr"};
      os << names[ins.sub] << " " << reg(ins.rd) << ", #" << ins.imm;
      break;
    }
    case Op::LDR:
      os << "ldr " << reg(ins.rd) << ", [" << reg(ins.rn) << ", #"
         << ins.imm * 4 << "]";
      break;
    case Op::STR:
      os << "str " << reg(ins.rd) << ", [" << reg(ins.rn) << ", #"
         << ins.imm * 4 << "]";
      break;
    case Op::LDRH:
      os << "ldrh " << reg(ins.rd) << ", [" << reg(ins.rn) << ", #"
         << ins.imm * 2 << "]";
      break;
    case Op::STRH:
      os << "strh " << reg(ins.rd) << ", [" << reg(ins.rn) << ", #"
         << ins.imm * 2 << "]";
      break;
    case Op::LDRB:
      os << "ldrb " << reg(ins.rd) << ", [" << reg(ins.rn) << ", #" << ins.imm
         << "]";
      break;
    case Op::STRB:
      os << "strb " << reg(ins.rd) << ", [" << reg(ins.rn) << ", #" << ins.imm
         << "]";
      break;
    case Op::LDRSH:
      os << "ldrsh " << reg(ins.rd) << ", [" << reg(ins.rn) << ", #"
         << ins.imm * 2 << "]";
      break;
    case Op::LDRSB:
      os << "ldrsb " << reg(ins.rd) << ", [" << reg(ins.rn) << ", #" << ins.imm
         << "]";
      break;
    case Op::LDR_LIT:
      os << "ldr " << reg(ins.rd) << ", ="
         << hex(lit_base(addr) + static_cast<uint32_t>(ins.imm) * 4);
      break;
    case Op::ADR:
      os << "adr " << reg(ins.rd) << ", "
         << hex(lit_base(addr) + static_cast<uint32_t>(ins.imm) * 4);
      break;
    case Op::LDR_SP:
      os << "ldr " << reg(ins.rd) << ", [sp, #" << ins.imm * 4 << "]";
      break;
    case Op::STR_SP:
      os << "str " << reg(ins.rd) << ", [sp, #" << ins.imm * 4 << "]";
      break;
    case Op::ADJSP:
      os << (ins.sub ? "sub" : "add") << " sp, #" << ins.imm * 4;
      break;
    case Op::PUSH:
      os << "push " << reglist(static_cast<uint32_t>(ins.imm),
                               ins.sub ? "lr" : "");
      break;
    case Op::POP:
      os << "pop " << reglist(static_cast<uint32_t>(ins.imm),
                              ins.sub ? "pc" : "");
      break;
    case Op::BCC:
      os << "b" << to_string(static_cast<Cond>(ins.sub)) << " "
         << hex(branch_target(addr, ins.imm));
      break;
    case Op::B:
      os << "b " << hex(branch_target(addr, ins.imm));
      break;
    case Op::BL_HI:
      if (bl_lo != nullptr)
        os << "bl " << hex(branch_target(addr, decode_bl(ins, *bl_lo)));
      else
        os << "bl.hi #" << ins.imm;
      break;
    case Op::BL_LO:
      os << "bl.lo #" << ins.imm;
      break;
    case Op::LDX: {
      static const char* names[] = {"ldr", "ldrh", "ldrb", "ldrsh"};
      os << names[ins.sub] << " " << reg(ins.rd) << ", [" << reg(ins.rn)
         << ", " << reg(ins.rm) << "]";
      break;
    }
    case Op::STX: {
      static const char* names[] = {"str", "strh", "strb"};
      os << names[ins.sub] << " " << reg(ins.rd) << ", [" << reg(ins.rn)
         << ", " << reg(ins.rm) << "]";
      break;
    }
    case Op::SYS:
      switch (static_cast<SysFn>(ins.sub)) {
        case SysFn::NOP: os << "nop"; break;
        case SysFn::HALT: os << "halt"; break;
        case SysFn::OUT: os << "out " << reg(ins.rd); break;
      }
      break;
  }
  return os.str();
}

} // namespace spmwcet::isa
