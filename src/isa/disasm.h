// Textual disassembly of T16 instructions, for debugging, examples and the
// region-map dumps (paper Figure 2 flavour).
#pragma once

#include <cstdint>
#include <string>

#include "isa/instruction.h"

namespace spmwcet::isa {

/// Renders one instruction at address `addr` (used to print pc-relative
/// targets as absolute addresses). BL pairs render fully from the BL_HI
/// half when `bl_lo` is supplied.
std::string disassemble(const Instr& ins, uint32_t addr,
                        const Instr* bl_lo = nullptr);

} // namespace spmwcet::isa
