#include "isa/decode.h"

#include "support/bitops.h"
#include "support/diag.h"

namespace spmwcet::isa {

Instr decode(uint16_t word) {
  const uint32_t w = word;
  const Op op = static_cast<Op>(bits(w, 15, 11));
  Instr ins;
  ins.op = op;
  switch (op) {
    case Op::MOVI:
    case Op::ADDI:
    case Op::SUBI:
    case Op::CMPI:
      ins.rd = static_cast<Reg>(bits(w, 10, 8));
      ins.imm = static_cast<int32_t>(bits(w, 7, 0));
      break;
    case Op::ALU:
      ins.sub = static_cast<uint8_t>(bits(w, 10, 7));
      ins.rm = static_cast<Reg>(bits(w, 5, 3));
      ins.rd = static_cast<Reg>(bits(w, 2, 0));
      SPMWCET_CHECK_MSG(ins.sub < kNumAluOps, "invalid ALU sub-opcode");
      break;
    case Op::ADD3:
    case Op::SUB3:
      ins.rm = static_cast<Reg>(bits(w, 8, 6));
      ins.rn = static_cast<Reg>(bits(w, 5, 3));
      ins.rd = static_cast<Reg>(bits(w, 2, 0));
      break;
    case Op::ADDI3:
    case Op::SUBI3:
      ins.imm = static_cast<int32_t>(bits(w, 8, 6));
      ins.rn = static_cast<Reg>(bits(w, 5, 3));
      ins.rd = static_cast<Reg>(bits(w, 2, 0));
      break;
    case Op::SHIFTI:
      ins.sub = static_cast<uint8_t>(bits(w, 10, 9));
      ins.imm = static_cast<int32_t>(bits(w, 8, 4));
      ins.rd = static_cast<Reg>(bits(w, 2, 0));
      SPMWCET_CHECK_MSG(ins.sub <= 2, "invalid SHIFTI sub-opcode");
      break;
    case Op::LDR:
    case Op::STR:
    case Op::LDRH:
    case Op::STRH:
    case Op::LDRB:
    case Op::STRB:
    case Op::LDRSH:
    case Op::LDRSB:
      ins.imm = static_cast<int32_t>(bits(w, 10, 6));
      ins.rn = static_cast<Reg>(bits(w, 5, 3));
      ins.rd = static_cast<Reg>(bits(w, 2, 0));
      break;
    case Op::LDR_LIT:
    case Op::ADR:
    case Op::LDR_SP:
    case Op::STR_SP:
      ins.rd = static_cast<Reg>(bits(w, 10, 8));
      ins.imm = static_cast<int32_t>(bits(w, 7, 0));
      break;
    case Op::ADJSP:
      ins.sub = static_cast<uint8_t>(bits(w, 10, 10));
      ins.imm = static_cast<int32_t>(bits(w, 6, 0));
      break;
    case Op::PUSH:
    case Op::POP:
      ins.sub = static_cast<uint8_t>(bits(w, 8, 8));
      ins.imm = static_cast<int32_t>(bits(w, 7, 0));
      break;
    case Op::BCC:
      ins.sub = static_cast<uint8_t>(bits(w, 10, 8));
      ins.imm = sign_extend(bits(w, 7, 0), 8);
      break;
    case Op::B:
      ins.imm = sign_extend(bits(w, 10, 0), 11);
      break;
    case Op::BL_HI:
    case Op::BL_LO:
      ins.imm = static_cast<int32_t>(bits(w, 10, 0));
      break;
    case Op::LDX:
      ins.sub = static_cast<uint8_t>(bits(w, 10, 9));
      ins.rm = static_cast<Reg>(bits(w, 8, 6));
      ins.rn = static_cast<Reg>(bits(w, 5, 3));
      ins.rd = static_cast<Reg>(bits(w, 2, 0));
      SPMWCET_CHECK_MSG(ins.sub <= 3, "invalid LDX sub-opcode");
      break;
    case Op::STX:
      ins.sub = static_cast<uint8_t>(bits(w, 10, 9));
      ins.rm = static_cast<Reg>(bits(w, 8, 6));
      ins.rn = static_cast<Reg>(bits(w, 5, 3));
      ins.rd = static_cast<Reg>(bits(w, 2, 0));
      SPMWCET_CHECK_MSG(ins.sub <= 2, "invalid STX sub-opcode");
      break;
    case Op::SYS:
      ins.sub = static_cast<uint8_t>(bits(w, 10, 8));
      ins.rd = static_cast<Reg>(bits(w, 2, 0));
      SPMWCET_CHECK_MSG(ins.sub <= 2, "invalid SYS function");
      break;
  }
  return ins;
}

int32_t decode_bl(const Instr& hi, const Instr& lo) {
  SPMWCET_CHECK(hi.op == Op::BL_HI && lo.op == Op::BL_LO);
  const uint32_t u = (static_cast<uint32_t>(hi.imm) << 11) |
                     (static_cast<uint32_t>(lo.imm) & 0x7ffu);
  return sign_extend(u, 22);
}

} // namespace spmwcet::isa
