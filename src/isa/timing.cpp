#include "isa/timing.h"

namespace spmwcet::isa {

uint32_t ExecTiming::compute_extra(const Instr& ins) {
  if (ins.op == Op::ALU) {
    switch (static_cast<AluOp>(ins.sub)) {
      case AluOp::MUL:
        return mul_extra;
      case AluOp::SDIV:
      case AluOp::UDIV:
        return div_extra;
      default:
        return 0;
    }
  }
  return 0;
}

} // namespace spmwcet::isa
