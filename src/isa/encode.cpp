#include "isa/encode.h"

#include <string>

#include "support/bitops.h"
#include "support/diag.h"

namespace spmwcet::isa {

namespace {

[[noreturn]] void field_error(const Instr& ins, const char* what) {
  throw ProgramError(std::string("encode: ") + what + " out of range for " +
                     to_string(ins.op) + " (imm=" + std::to_string(ins.imm) +
                     ")");
}

void require_reg(Reg r) {
  SPMWCET_CHECK_MSG(r < kNumRegs, "register index out of range");
}

uint16_t major(Op op) {
  return static_cast<uint16_t>(place(static_cast<uint32_t>(op), 15, 11));
}

} // namespace

uint16_t encode(const Instr& ins) {
  const uint16_t m = major(ins.op);
  switch (ins.op) {
    case Op::MOVI:
    case Op::ADDI:
    case Op::SUBI:
    case Op::CMPI: {
      require_reg(ins.rd);
      if (!fits_unsigned(static_cast<uint32_t>(ins.imm), 8) || ins.imm < 0)
        field_error(ins, "imm8");
      return static_cast<uint16_t>(m | place(ins.rd, 10, 8) |
                                   place(static_cast<uint32_t>(ins.imm), 7, 0));
    }
    case Op::ALU: {
      require_reg(ins.rd);
      require_reg(ins.rm);
      SPMWCET_CHECK(ins.sub < kNumAluOps);
      return static_cast<uint16_t>(m | place(ins.sub, 10, 7) |
                                   place(ins.rm, 5, 3) | place(ins.rd, 2, 0));
    }
    case Op::ADD3:
    case Op::SUB3: {
      require_reg(ins.rd);
      require_reg(ins.rn);
      require_reg(ins.rm);
      return static_cast<uint16_t>(m | place(ins.rm, 8, 6) |
                                   place(ins.rn, 5, 3) | place(ins.rd, 2, 0));
    }
    case Op::ADDI3:
    case Op::SUBI3: {
      require_reg(ins.rd);
      require_reg(ins.rn);
      if (!fits_unsigned(static_cast<uint32_t>(ins.imm), 3) || ins.imm < 0)
        field_error(ins, "imm3");
      return static_cast<uint16_t>(m | place(static_cast<uint32_t>(ins.imm), 8, 6) |
                                   place(ins.rn, 5, 3) | place(ins.rd, 2, 0));
    }
    case Op::SHIFTI: {
      require_reg(ins.rd);
      SPMWCET_CHECK(ins.sub <= 2);
      if (!fits_unsigned(static_cast<uint32_t>(ins.imm), 5) || ins.imm < 0)
        field_error(ins, "imm5");
      return static_cast<uint16_t>(m | place(ins.sub, 10, 9) |
                                   place(static_cast<uint32_t>(ins.imm), 8, 4) |
                                   place(ins.rd, 2, 0));
    }
    case Op::LDR:
    case Op::STR:
    case Op::LDRH:
    case Op::STRH:
    case Op::LDRB:
    case Op::STRB:
    case Op::LDRSH:
    case Op::LDRSB: {
      require_reg(ins.rd);
      require_reg(ins.rn);
      if (!fits_unsigned(static_cast<uint32_t>(ins.imm), 5) || ins.imm < 0)
        field_error(ins, "imm5");
      return static_cast<uint16_t>(m | place(static_cast<uint32_t>(ins.imm), 10, 6) |
                                   place(ins.rn, 5, 3) | place(ins.rd, 2, 0));
    }
    case Op::LDR_LIT:
    case Op::ADR:
    case Op::LDR_SP:
    case Op::STR_SP: {
      require_reg(ins.rd);
      if (!fits_unsigned(static_cast<uint32_t>(ins.imm), 8) || ins.imm < 0)
        field_error(ins, "imm8");
      return static_cast<uint16_t>(m | place(ins.rd, 10, 8) |
                                   place(static_cast<uint32_t>(ins.imm), 7, 0));
    }
    case Op::ADJSP: {
      if (!fits_unsigned(static_cast<uint32_t>(ins.imm), 7) || ins.imm < 0)
        field_error(ins, "imm7");
      return static_cast<uint16_t>(m | place(ins.sub & 1u, 10, 10) |
                                   place(static_cast<uint32_t>(ins.imm), 6, 0));
    }
    case Op::PUSH:
    case Op::POP: {
      if (!fits_unsigned(static_cast<uint32_t>(ins.imm), 8) || ins.imm < 0)
        field_error(ins, "register list");
      return static_cast<uint16_t>(m | place(ins.sub & 1u, 8, 8) |
                                   place(static_cast<uint32_t>(ins.imm), 7, 0));
    }
    case Op::BCC: {
      SPMWCET_CHECK(ins.sub < kNumConds);
      if (!fits_signed(ins.imm, 8)) field_error(ins, "soff8");
      return static_cast<uint16_t>(m | place(ins.sub, 10, 8) |
                                   place(static_cast<uint32_t>(ins.imm), 7, 0));
    }
    case Op::B: {
      if (!fits_signed(ins.imm, 11)) field_error(ins, "soff11");
      return static_cast<uint16_t>(m |
                                   place(static_cast<uint32_t>(ins.imm), 10, 0));
    }
    case Op::BL_HI:
    case Op::BL_LO: {
      if (!fits_unsigned(static_cast<uint32_t>(ins.imm), 11) || ins.imm < 0)
        field_error(ins, "bl half");
      return static_cast<uint16_t>(m |
                                   place(static_cast<uint32_t>(ins.imm), 10, 0));
    }
    case Op::LDX: {
      require_reg(ins.rd);
      require_reg(ins.rn);
      require_reg(ins.rm);
      SPMWCET_CHECK(ins.sub <= 3);
      return static_cast<uint16_t>(m | place(ins.sub, 10, 9) |
                                   place(ins.rm, 8, 6) | place(ins.rn, 5, 3) |
                                   place(ins.rd, 2, 0));
    }
    case Op::STX: {
      require_reg(ins.rd);
      require_reg(ins.rn);
      require_reg(ins.rm);
      SPMWCET_CHECK(ins.sub <= 2);
      return static_cast<uint16_t>(m | place(ins.sub, 10, 9) |
                                   place(ins.rm, 8, 6) | place(ins.rn, 5, 3) |
                                   place(ins.rd, 2, 0));
    }
    case Op::SYS: {
      SPMWCET_CHECK(ins.sub <= 2);
      require_reg(ins.rd);
      return static_cast<uint16_t>(m | place(ins.sub, 10, 8) |
                                   place(ins.rd, 2, 0));
    }
  }
  SPMWCET_CHECK(false);
}

void encode_bl(int32_t soff22, Instr& hi, Instr& lo) {
  if (!fits_signed(soff22, 22))
    throw ProgramError("encode: BL offset out of 22-bit range: " +
                       std::to_string(soff22));
  const uint32_t u = static_cast<uint32_t>(soff22) & 0x3fffffu;
  hi = Instr{.op = Op::BL_HI, .imm = static_cast<int32_t>(u >> 11)};
  lo = Instr{.op = Op::BL_LO, .imm = static_cast<int32_t>(u & 0x7ffu)};
}

} // namespace spmwcet::isa
