// Binary decoder for T16 instructions (16-bit halfword -> Instr).
#pragma once

#include <cstdint>

#include "isa/instruction.h"

namespace spmwcet::isa {

/// Decodes one halfword. Signed immediates are sign-extended; BL halves are
/// returned individually (use decode_bl to combine a pair).
Instr decode(uint16_t word);

/// Combines a BL_HI/BL_LO pair into the signed 22-bit halfword offset
/// relative to the BL_HI address (branch_target semantics).
int32_t decode_bl(const Instr& hi, const Instr& lo);

} // namespace spmwcet::isa
