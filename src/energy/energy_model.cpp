#include "energy/energy_model.h"

// Header-only values; translation unit anchors the library target.
namespace spmwcet::energy {
static_assert(sizeof(EnergyModel) > 0);
} // namespace spmwcet::energy
