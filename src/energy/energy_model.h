// Instruction-level energy model in the style of Steinke et al. (PATMOS
// 2001), the model the paper's allocation algorithm optimizes against.
//
// Values are representative nanojoule costs for an ARM7TDMI-class core with
// external main memory on an AT91EB01-like board and an on-chip scratchpad:
// main-memory accesses dominate, the scratchpad costs roughly 1/20th of a
// 16-bit main-memory access, and 32-bit main-memory accesses pay for two
// bus transfers. Absolute calibration does not matter for the paper's
// experiments — only the ratios drive the knapsack choices.
#pragma once

#include <cstdint>

#include "isa/timing.h"

namespace spmwcet::energy {

struct EnergyModel {
  /// Core energy per executed cycle (pipeline + register file).
  double cpu_cycle_nj = 0.9;
  /// Main memory access energy by transfer width.
  double main_8_nj = 15.5;
  double main_16_nj = 24.5;
  double main_32_nj = 49.3;
  /// Scratchpad access energy (any width; the array is 32 bits wide).
  double spm_nj = 1.2;
  /// Cache energies (tag compare + array read, and a full line fill).
  double cache_hit_nj = 2.4;
  double cache_miss_nj = 2.4 + 4 * 49.3;

  /// Energy of one access of `bytes` in {1,2,4} to memory class `cls`.
  double access_nj(isa::MemClass cls, uint32_t bytes) const {
    if (cls == isa::MemClass::Scratchpad) return spm_nj;
    if (bytes == 4) return main_32_nj;
    if (bytes == 2) return main_16_nj;
    return main_8_nj;
  }

  /// Per-access energy saved by moving data of width `bytes` from main
  /// memory onto the scratchpad — the coefficient of the knapsack benefit
  /// function.
  double spm_benefit_nj(uint32_t bytes) const {
    return access_nj(isa::MemClass::MainMemory, bytes) - spm_nj;
  }
};

} // namespace spmwcet::energy
