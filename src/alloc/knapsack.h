// The knapsack formulation of static scratchpad allocation (Steinke et al.,
// DATE 2002): maximize total energy benefit subject to scratchpad capacity.
// Solved exactly two ways — as a 0/1 ILP through the in-tree
// branch-and-bound solver (the paper uses CPLEX here) and by dynamic
// programming (used as a cross-check in tests and as a fast path).
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/memory_objects.h"

namespace spmwcet::alloc {

struct KnapsackResult {
  std::vector<std::size_t> chosen; ///< indices into the object vector
  double benefit_nj = 0.0;
  uint32_t used_bytes = 0;
};

/// Exact solution via the ILP solver.
KnapsackResult solve_knapsack_ilp(const std::vector<MemoryObject>& objects,
                                  uint32_t capacity_bytes);

/// Exact solution via dynamic programming over capacity bytes.
KnapsackResult solve_knapsack_dp(const std::vector<MemoryObject>& objects,
                                 uint32_t capacity_bytes);

} // namespace spmwcet::alloc
