#include "alloc/memory_objects.h"

#include "support/bitops.h"

namespace spmwcet::alloc {

std::vector<MemoryObject> collect_objects(const minic::ObjModule& mod,
                                          const sim::AccessProfile& profile,
                                          const energy::EnergyModel& em) {
  const link::ObjectSizes sizes = link::measure(mod);
  std::vector<MemoryObject> objects;

  auto counts_for = [&](const std::string& name) -> sim::AccessCounts {
    const sim::AccessCounts* c = profile.find(name);
    return c != nullptr ? *c : sim::AccessCounts{};
  };

  for (const auto& fn : mod.functions) {
    const sim::AccessCounts c = counts_for(fn.name);
    MemoryObject obj;
    obj.name = fn.name;
    obj.is_function = true;
    obj.size_bytes = sizes.function_bytes.at(fn.name);
    // Fetches are halfword reads; literal-pool loads land in load[2]
    // because the pool belongs to the function's address range.
    obj.accesses = c.fetch + c.load[0] + c.load[1] + c.load[2];
    obj.benefit_nj = static_cast<double>(c.fetch) * em.spm_benefit_nj(2) +
                     static_cast<double>(c.load[0]) * em.spm_benefit_nj(1) +
                     static_cast<double>(c.load[1]) * em.spm_benefit_nj(2) +
                     static_cast<double>(c.load[2]) * em.spm_benefit_nj(4);
    objects.push_back(obj);
  }

  for (const auto& g : mod.globals) {
    const sim::AccessCounts c = counts_for(g.name);
    MemoryObject obj;
    obj.name = g.name;
    obj.is_function = false;
    // The linker aligns every object to 4 bytes; charge the padded size so
    // a full knapsack can never overflow the scratchpad.
    obj.size_bytes = align_up(sizes.global_bytes.at(g.name), 4);
    obj.accesses = 0;
    for (int w = 0; w < 3; ++w) {
      const uint32_t bytes = 1u << w;
      obj.accesses += c.load[w] + c.store[w];
      obj.benefit_nj += static_cast<double>(c.load[w] + c.store[w]) *
                        em.spm_benefit_nj(bytes);
    }
    objects.push_back(obj);
  }

  return objects;
}

} // namespace spmwcet::alloc
