#include "alloc/knapsack.h"

#include <algorithm>

#include "lp/branch_bound.h"
#include "support/diag.h"

namespace spmwcet::alloc {

KnapsackResult solve_knapsack_ilp(const std::vector<MemoryObject>& objects,
                                  uint32_t capacity_bytes) {
  lp::Model m;
  std::vector<int> vars;
  std::vector<lp::Term> cap_terms, obj_terms;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const int v = m.add_var(objects[i].name, 0, 1, true);
    vars.push_back(v);
    cap_terms.push_back({v, static_cast<double>(objects[i].size_bytes)});
    obj_terms.push_back({v, objects[i].benefit_nj});
  }
  m.add_constraint(cap_terms, lp::Relation::LE,
                   static_cast<double>(capacity_bytes), "capacity");
  m.set_objective(lp::Sense::Maximize, obj_terms);

  const lp::Solution sol = lp::solve_milp(m);
  if (sol.status != lp::Status::Optimal)
    throw SolverError("knapsack: ILP did not solve to optimality");

  KnapsackResult result;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (sol.value(vars[i]) > 0.5) {
      result.chosen.push_back(i);
      result.benefit_nj += objects[i].benefit_nj;
      result.used_bytes += objects[i].size_bytes;
    }
  }
  return result;
}

KnapsackResult solve_knapsack_dp(const std::vector<MemoryObject>& objects,
                                 uint32_t capacity_bytes) {
  const std::size_t n = objects.size();
  const std::size_t cap = capacity_bytes;
  // best[w] = max benefit using capacity w; keep[i][w] for reconstruction.
  std::vector<double> best(cap + 1, 0.0);
  std::vector<std::vector<uint8_t>> keep(
      n, std::vector<uint8_t>(cap + 1, 0));
  for (std::size_t i = 0; i < n; ++i) {
    const uint32_t w = objects[i].size_bytes;
    const double b = objects[i].benefit_nj;
    if (w > cap) continue;
    for (std::size_t c = cap; c >= w; --c) {
      if (best[c - w] + b > best[c]) {
        best[c] = best[c - w] + b;
        keep[i][c] = 1;
      }
      if (c == w) break;
    }
  }
  KnapsackResult result;
  std::size_t c = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (keep[i][c]) {
      result.chosen.push_back(i);
      result.benefit_nj += objects[i].benefit_nj;
      result.used_bytes += objects[i].size_bytes;
      c -= objects[i].size_bytes;
    }
  }
  std::reverse(result.chosen.begin(), result.chosen.end());
  return result;
}

} // namespace spmwcet::alloc
