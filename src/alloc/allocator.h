// Scratchpad allocation strategies.
//
// * allocate_energy_optimal — the paper's flow (Steinke DATE'02): profile a
//   main-memory-only run, compute per-object energy benefits, solve the
//   knapsack exactly, and emit the link-time SPM assignment.
// * allocate_wcet_driven — the paper's future-work idea: choose objects to
//   minimize the *analyzed WCET* rather than profiled energy, via greedy
//   best-improvement-per-byte re-analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/knapsack.h"
#include "alloc/memory_objects.h"
#include "link/layout.h"
#include "wcet/analyzer.h"

namespace spmwcet::alloc {

struct AllocationResult {
  link::SpmAssignment assignment;
  std::vector<MemoryObject> chosen;
  double benefit_nj = 0.0;
  uint32_t used_bytes = 0;
};

/// Energy-optimal static allocation from a profiling run.
AllocationResult allocate_energy_optimal(const minic::ObjModule& mod,
                                         const sim::AccessProfile& profile,
                                         uint32_t spm_capacity,
                                         const energy::EnergyModel& em = {});

/// WCET-driven greedy allocation: repeatedly adds the object whose
/// placement most reduces the analyzed WCET per byte, re-linking and
/// re-analyzing after each candidate evaluation. `opts` supplies the
/// address-space shape (its spm_size is overridden by `spm_capacity`).
/// `fast_wcet = false` runs every candidate analysis through the seed
/// analyzer (the --legacy-wcet escape hatch; chosen placements are
/// identical either way by analyzer parity).
AllocationResult allocate_wcet_driven(const minic::ObjModule& mod,
                                      uint32_t spm_capacity,
                                      link::LinkOptions opts = {},
                                      bool fast_wcet = true);

} // namespace spmwcet::alloc
