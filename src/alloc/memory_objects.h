// Memory objects: the unit of scratchpad allocation, exactly as in the
// paper — whole functions (code + literal pool) and global data elements.
// Each object's knapsack weight is its linked size; its value is the
// profiled energy benefit of serving its accesses from the scratchpad.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "energy/energy_model.h"
#include "link/layout.h"
#include "minic/obj.h"
#include "sim/profile.h"

namespace spmwcet::alloc {

struct MemoryObject {
  std::string name;
  bool is_function = false;
  uint32_t size_bytes = 0;
  /// Profiled access count (fetches for functions, loads+stores for data).
  uint64_t accesses = 0;
  /// Energy saved per run if this object lives on the scratchpad (nJ).
  double benefit_nj = 0.0;
};

/// Builds the allocation candidates for `mod` from a profiling run.
/// Functions account for their instruction fetches and their literal-pool
/// loads (32-bit, attributed to the function symbol by the profiler);
/// globals account for their data loads and stores by width.
std::vector<MemoryObject> collect_objects(const minic::ObjModule& mod,
                                          const sim::AccessProfile& profile,
                                          const energy::EnergyModel& em);

} // namespace spmwcet::alloc
