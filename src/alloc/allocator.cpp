#include "alloc/allocator.h"

#include <algorithm>

#include "support/diag.h"

namespace spmwcet::alloc {

namespace {

AllocationResult from_chosen(const std::vector<MemoryObject>& objects,
                             const KnapsackResult& ks) {
  AllocationResult result;
  result.benefit_nj = ks.benefit_nj;
  result.used_bytes = ks.used_bytes;
  for (const std::size_t i : ks.chosen) {
    const MemoryObject& obj = objects[i];
    result.chosen.push_back(obj);
    if (obj.is_function)
      result.assignment.functions.insert(obj.name);
    else
      result.assignment.globals.insert(obj.name);
  }
  return result;
}

} // namespace

namespace {

// Above this object count the branch-and-bound ILP is replaced by the
// exact DP: B&B node counts explode on population-scale candidate tables
// (a generated callheavy workload carries ~400 memory objects and measured
// minutes per solve), while every paper benchmark stays far below the
// threshold and keeps the ILP path bit-for-bit.
constexpr std::size_t kIlpObjectLimit = 100;

} // namespace

AllocationResult allocate_energy_optimal(const minic::ObjModule& mod,
                                         const sim::AccessProfile& profile,
                                         uint32_t spm_capacity,
                                         const energy::EnergyModel& em) {
  const std::vector<MemoryObject> objects = collect_objects(mod, profile, em);
  if (objects.size() <= kIlpObjectLimit) {
    const KnapsackResult ks = solve_knapsack_ilp(objects, spm_capacity);
    return from_chosen(objects, ks);
  }

  // Scalable exact path: zero-benefit objects can never raise the optimum,
  // so solve over the positive-benefit subset only. If that subset fits
  // outright, the answer needs no solver at all; otherwise the DP capacity
  // is bounded by the subset's total footprint, keeping it cheap.
  std::vector<MemoryObject> positive;
  uint64_t positive_bytes = 0;
  for (const MemoryObject& obj : objects) {
    if (obj.benefit_nj <= 0.0) continue;
    positive.push_back(obj);
    positive_bytes += obj.size_bytes;
  }
  KnapsackResult ks;
  if (positive_bytes <= spm_capacity) {
    for (std::size_t i = 0; i < positive.size(); ++i) {
      ks.chosen.push_back(i);
      ks.benefit_nj += positive[i].benefit_nj;
      ks.used_bytes += positive[i].size_bytes;
    }
  } else {
    ks = solve_knapsack_dp(positive, spm_capacity);
  }
  return from_chosen(positive, ks);
}

AllocationResult allocate_wcet_driven(const minic::ObjModule& mod,
                                      uint32_t spm_capacity,
                                      link::LinkOptions opts,
                                      bool fast_wcet) {
  opts.spm_size = spm_capacity;

  // Candidates with their sizes; benefits are discovered by re-analysis.
  sim::AccessProfile empty_profile;
  std::vector<MemoryObject> objects =
      collect_objects(mod, empty_profile, energy::EnergyModel{});

  link::SpmAssignment current;
  uint32_t used = 0;
  wcet::AnalyzerConfig acfg;
  acfg.fast_path = fast_wcet;
  auto wcet_of = [&](const link::SpmAssignment& a) -> uint64_t {
    const link::Image img = link::link_program(mod, opts, a);
    return wcet::analyze_wcet(img, acfg).wcet;
  };
  uint64_t current_wcet = wcet_of(current);

  std::vector<bool> taken(objects.size(), false);
  AllocationResult result;

  for (;;) {
    int best = -1;
    uint64_t best_wcet = current_wcet;
    double best_gain_per_byte = 0.0;
    for (std::size_t i = 0; i < objects.size(); ++i) {
      if (taken[i]) continue;
      // Alignment can add up to 3 bytes per object; be conservative.
      if (used + objects[i].size_bytes + 4 > spm_capacity) continue;
      link::SpmAssignment trial = current;
      if (objects[i].is_function)
        trial.functions.insert(objects[i].name);
      else
        trial.globals.insert(objects[i].name);
      uint64_t w;
      try {
        w = wcet_of(trial);
      } catch (const ProgramError&) {
        continue; // alignment pushed past capacity; skip this candidate
      }
      if (w >= current_wcet) continue;
      const double gain_per_byte =
          static_cast<double>(current_wcet - w) /
          std::max<uint32_t>(1, objects[i].size_bytes);
      if (gain_per_byte > best_gain_per_byte) {
        best_gain_per_byte = gain_per_byte;
        best = static_cast<int>(i);
        best_wcet = w;
      }
    }
    if (best < 0) break;
    taken[static_cast<std::size_t>(best)] = true;
    const MemoryObject& obj = objects[static_cast<std::size_t>(best)];
    if (obj.is_function)
      current.functions.insert(obj.name);
    else
      current.globals.insert(obj.name);
    used += obj.size_bytes;
    current_wcet = best_wcet;
    result.chosen.push_back(obj);
  }

  result.assignment = current;
  result.used_bytes = used;
  return result;
}

} // namespace spmwcet::alloc
