// spmwcet — command-line driver for the scratchpad-vs-cache WCET toolchain.
//
//   spmwcet list
//   spmwcet run <benchmark> [--spm BYTES | --cache BYTES [--assoc N]
//                            [--icache] [--persistence]]
//   spmwcet sweep <benchmark>|all [--jobs N] [--csv] [--no-artifact-cache]
//       — with no setup flag: the full both-setup evaluation (every size,
//         Figure-4/5 ratio tables, Table-2 summary); `all` covers the
//         whole paper, a benchmark name just that workload.
//   spmwcet sweep <benchmark>|all --spm|--cache [--persistence]
//                            [--wcet-alloc] [--csv] [--jobs N]
//   spmwcet disasm <benchmark> [function]
//   spmwcet annotations <benchmark> [--spm BYTES]
//   spmwcet simbench [--legacy-sim] [--repeat N] [--json FILE]
//       — simulator throughput (instructions/second) over the paper
//         workloads, best-of-N; --legacy-sim measures the pre-overhaul
//         simulator as the speedup baseline.
//
// Benchmarks: g721, adpcm, multisort, bubble.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "alloc/allocator.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sweep_runner.h"
#include "link/layout.h"
#include "sim/simulator.h"
#include "wcet/analyzer.h"
#include "wcet/dump.h"

namespace {

using namespace spmwcet;

int usage() {
  std::cerr << "usage:\n"
            << "  spmwcet list\n"
            << "  spmwcet run <bench> [--spm BYTES | --cache BYTES"
               " [--assoc N] [--icache] [--persistence]]"
               " [--trace] [--blocks]\n"
            << "  spmwcet sweep <bench>|all [--jobs N] [--csv]"
               " [--no-artifact-cache]   # both setups + ratio tables\n"
            << "  spmwcet sweep <bench>|all --spm|--cache [--persistence]"
               " [--wcet-alloc] [--csv] [--jobs N]\n"
            << "  spmwcet disasm <bench> [function]\n"
            << "  spmwcet annotations <bench> [--spm BYTES]\n"
            << "  spmwcet simbench [--legacy-sim] [--repeat N] [--json FILE]\n"
            << "benchmarks: g721, adpcm, multisort, bubble\n";
  return 2;
}

/// Workloads come from the memoized registry, so commands that touch the
/// same benchmark repeatedly (or `sweep all` after `list`) lower the MiniC
/// program once per process.
std::shared_ptr<const workloads::WorkloadInfo>
make_workload(const std::string& name) {
  return workloads::WorkloadRegistry::instance().benchmark(name);
}

struct Args {
  std::vector<std::string> positional;
  std::optional<uint32_t> spm;
  std::optional<uint32_t> cache;
  uint32_t assoc = 1;
  bool icache = false;
  bool persistence = false;
  bool wcet_alloc = false;
  bool csv = false;
  bool trace = false;
  bool blocks = false;
  bool no_artifact_cache = false;
  bool legacy_sim = false;
  uint32_t repeat = 5;
  std::string json;
  uint32_t jobs = 1;
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_u32 = [&]() -> uint32_t {
      if (i + 1 >= argc) throw Error("missing value after " + arg);
      try {
        return static_cast<uint32_t>(std::stoul(argv[++i]));
      } catch (const std::exception&) {
        throw Error("expected a number after " + arg + ", got '" +
                    argv[i] + "'");
      }
    };
    // `sweep` uses --spm/--cache as mode flags with no size, `run` gives a
    // size; consume a value only when the next argument is numeric.
    auto next_u32_or = [&](uint32_t fallback) -> uint32_t {
      if (i + 1 >= argc) return fallback;
      const std::string peek = argv[i + 1];
      if (peek.empty() ||
          peek.find_first_not_of("0123456789") != std::string::npos)
        return fallback;
      return static_cast<uint32_t>(std::stoul(argv[++i]));
    };
    if (arg == "--spm")
      a.spm = next_u32_or(0);
    else if (arg == "--cache")
      a.cache = next_u32_or(0);
    else if (arg == "--assoc")
      a.assoc = next_u32();
    else if (arg == "--icache")
      a.icache = true;
    else if (arg == "--persistence")
      a.persistence = true;
    else if (arg == "--wcet-alloc")
      a.wcet_alloc = true;
    else if (arg == "--csv")
      a.csv = true;
    else if (arg == "--jobs")
      a.jobs = next_u32();
    else if (arg == "--no-artifact-cache")
      a.no_artifact_cache = true;
    else if (arg == "--legacy-sim")
      a.legacy_sim = true;
    else if (arg == "--repeat")
      a.repeat = next_u32();
    else if (arg == "--json") {
      if (i + 1 >= argc) throw Error("missing value after --json");
      a.json = argv[++i];
    }
    else if (arg == "--trace")
      a.trace = true;
    else if (arg == "--blocks")
      a.blocks = true;
    else if (arg.rfind("--", 0) == 0)
      throw Error("unknown option: " + arg);
    else
      a.positional.push_back(arg);
  }
  return a;
}

int cmd_list() {
  TablePrinter table({"name", "description", "functions", "globals"});
  for (const auto& wl : workloads::cached_paper_benchmarks())
    table.add_row({wl->name, wl->description,
                   TablePrinter::fmt(
                       static_cast<uint64_t>(wl->module.functions.size())),
                   TablePrinter::fmt(
                       static_cast<uint64_t>(wl->module.globals.size()))});
  table.render(std::cout);
  return 0;
}

int cmd_run(const Args& a) {
  const auto& wl = *make_workload(a.positional[1]);

  // Unlike `sweep`, `run` measures one point, so the capacity is required
  // (the parser leaves it 0 when --spm/--cache had no numeric value).
  if ((a.spm && *a.spm == 0) || (a.cache && *a.cache == 0))
    throw Error("run requires a size: --spm BYTES or --cache BYTES");

  if (a.spm) {
    harness::SweepConfig cfg;
    cfg.wcet_driven_alloc = a.wcet_alloc;
    const auto pt =
        harness::run_point(wl, harness::MemSetup::Scratchpad, *a.spm, cfg);
    std::cout << wl.name << " with " << *a.spm << "-byte scratchpad ("
              << pt.spm_used_bytes << " bytes allocated):\n"
              << "  ACET " << pt.sim_cycles << " cycles, WCET "
              << pt.wcet_cycles << " cycles, ratio " << pt.ratio << "\n";
    return 0;
  }
  if (a.cache) {
    harness::SweepConfig cfg;
    cfg.cache_assoc = a.assoc;
    cfg.cache_unified = !a.icache;
    cfg.with_persistence = a.persistence;
    const auto pt =
        harness::run_point(wl, harness::MemSetup::Cache, *a.cache, cfg);
    std::cout << wl.name << " with " << *a.cache << "-byte "
              << (a.icache ? "instruction" : "unified") << " cache (assoc "
              << a.assoc << (a.persistence ? ", persistence" : ", MUST-only")
              << "):\n"
              << "  ACET " << pt.sim_cycles << " cycles (" << pt.cache_hits
              << " hits / " << pt.cache_misses << " misses), WCET "
              << pt.wcet_cycles << " cycles, ratio " << pt.ratio << "\n";
    return 0;
  }

  // Plain main-memory configuration with a full report.
  const link::Image img = link::link_program(wl.module, {}, {});
  sim::SimConfig scfg;
  if (a.trace) scfg.trace = &std::cerr;
  const auto run = sim::simulate(img, scfg);
  const auto report = wcet::analyze_wcet(img, {});
  std::cout << wl.name << " (main memory only):\n"
            << "  ACET " << run.cycles << " cycles, " << run.instructions
            << " instructions\n\n";
  wcet::render_report(report, std::cout, a.blocks);
  return 0;
}

int cmd_sweep(const Args& a) {
  harness::SweepConfig cfg;
  cfg.setup = a.spm ? harness::MemSetup::Scratchpad : harness::MemSetup::Cache;
  cfg.with_persistence = a.persistence;
  cfg.wcet_driven_alloc = a.wcet_alloc;
  cfg.cache_assoc = a.assoc;
  cfg.cache_unified = !a.icache;
  cfg.jobs = a.jobs;
  cfg.use_artifact_cache = !a.no_artifact_cache;

  // `sweep` with no setup flag runs the full both-setup evaluation — the
  // whole paper for `all`, or one benchmark — as one run_matrix batch,
  // rendered with the Table-2 summary and the Figure-4/5 ratio tables.
  if (!a.spm && !a.cache) {
    const auto wls =
        a.positional[1] == "all"
            ? workloads::cached_paper_benchmarks()
            : std::vector<std::shared_ptr<const workloads::WorkloadInfo>>{
                  make_workload(a.positional[1])};
    const auto results = harness::run_full_evaluation(wls, cfg, cfg.jobs);
    harness::render_evaluation(results, std::cout, a.csv);
    return 0;
  }

  auto render = [&](const std::string& name,
                    const std::vector<harness::SweepPoint>& points) {
    const TablePrinter table = harness::to_table(name, cfg.setup, points);
    if (a.csv)
      table.render_csv(std::cout);
    else
      table.render(std::cout);
  };

  if (a.positional[1] == "all") {
    // One setup, every benchmark × every size as one batch, so --jobs
    // parallelizes across benchmarks too.
    const auto wls = workloads::cached_paper_benchmarks();
    std::vector<harness::MatrixRequest> requests;
    for (const auto& wl : wls) requests.push_back({wl.get(), cfg});
    const auto results = harness::run_matrix(requests, cfg.jobs);
    for (std::size_t i = 0; i < wls.size(); ++i) {
      render(wls[i]->name, results[i]);
      if (!a.csv && i + 1 < wls.size()) std::cout << "\n";
    }
    return 0;
  }

  const auto& wl = *make_workload(a.positional[1]);
  render(wl.name, harness::run_sweep(wl, cfg));
  return 0;
}

int cmd_simbench(const Args& a) {
  // Measures what the evaluation pipeline actually pays per point: a full
  // profiling simulation (simulator construction included, so the fast
  // path's once-per-image precomputation is charged honestly) of each
  // paper workload's no-assignment image. Best-of-N damps machine noise.
  if (a.repeat == 0) throw Error("simbench requires --repeat >= 1");
  if (a.positional.size() > 1)
    throw Error("simbench always measures the full paper set; unexpected "
                "argument: " +
                a.positional[1]);
  sim::SimConfig scfg;
  scfg.collect_profile = true;
  scfg.fast_path = !a.legacy_sim;
  const char* mode = a.legacy_sim ? "legacy" : "fast";

  struct Row {
    std::string name;
    uint64_t instructions = 0;
    double best_seconds = 0.0;
    double ips = 0.0;
  };
  std::vector<Row> rows;
  uint64_t total_instr = 0;
  double total_seconds = 0.0;
  for (const auto& wl : workloads::cached_paper_benchmarks()) {
    const link::Image img = link::link_program(wl->module, {}, {});
    Row row{wl->name, 0, 1e300, 0.0};
    for (uint32_t i = 0; i < a.repeat; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      sim::Simulator s(img, scfg);
      const sim::SimResult run = s.run();
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      row.instructions = run.instructions;
      row.best_seconds = std::min(row.best_seconds, dt.count());
    }
    row.ips = static_cast<double>(row.instructions) / row.best_seconds;
    total_instr += row.instructions;
    total_seconds += row.best_seconds;
    rows.push_back(std::move(row));
  }
  const double aggregate = static_cast<double>(total_instr) / total_seconds;

  TablePrinter table({"benchmark", "instructions", "best [ms]", "instr/s"});
  for (const Row& r : rows)
    table.add_row({r.name, TablePrinter::fmt(r.instructions),
                   TablePrinter::fmt(r.best_seconds * 1e3, 3),
                   TablePrinter::fmt(r.ips, 0)});
  std::cout << "simulator throughput (" << mode << " path, best of "
            << a.repeat << ", profiling on):\n";
  table.render(std::cout);
  std::cout << "aggregate instructions/second: "
            << static_cast<uint64_t>(aggregate) << "\n";

  if (!a.json.empty()) {
    std::ofstream out(a.json);
    if (!out) throw Error("cannot write " + a.json);
    out << "{\n  \"schema\": \"spmwcet-sim-throughput/1\",\n  \"mode\": \""
        << mode << "\",\n  \"repeat\": " << a.repeat
        << ",\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"name\": \"" << r.name
          << "\", \"instructions\": " << r.instructions
          << ", \"best_seconds\": " << r.best_seconds
          << ", \"instructions_per_second\": "
          << static_cast<uint64_t>(r.ips) << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"aggregate_instructions_per_second\": "
        << static_cast<uint64_t>(aggregate) << "\n}\n";
  }
  return 0;
}

int cmd_disasm(const Args& a) {
  const auto& wl = *make_workload(a.positional[1]);
  const link::Image img = link::link_program(wl.module, {}, {});
  if (a.positional.size() > 2)
    wcet::disassemble_function(img, a.positional[2], std::cout);
  else
    wcet::disassemble_program(img, std::cout);
  return 0;
}

int cmd_annotations(const Args& a) {
  const auto& wl = *make_workload(a.positional[1]);
  link::LinkOptions opts;
  link::SpmAssignment assignment;
  if (a.spm) {
    opts.spm_size = *a.spm;
    // Use the paper's allocation flow to pick the scratchpad contents.
    const link::Image profile_img = link::link_program(wl.module, opts, {});
    sim::SimConfig pcfg;
    pcfg.collect_profile = true;
    sim::Simulator profiler(profile_img, pcfg);
    const auto run = profiler.run();
    assignment =
        alloc::allocate_energy_optimal(wl.module, run.profile, *a.spm)
            .assignment;
  }
  const link::Image img = link::link_program(wl.module, opts, assignment);
  img.regions.dump_annotations(std::cout);
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    if (args.positional.empty()) return usage();
    const std::string& cmd = args.positional[0];
    if (cmd == "list") return cmd_list();
    if (cmd == "simbench") return cmd_simbench(args);
    if (args.positional.size() < 2) return usage();
    if (cmd == "run") return cmd_run(args);
    if (cmd == "sweep") return cmd_sweep(args);
    if (cmd == "disasm") return cmd_disasm(args);
    if (cmd == "annotations") return cmd_annotations(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
