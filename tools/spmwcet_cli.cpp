// spmwcet — command-line driver for the scratchpad-vs-cache WCET toolchain.
//
// The CLI is a thin client of the Engine API (src/api/): flag parsing
// builds validated Request values, an api::Engine executes them, and the
// shared renderers (api/render.h) print the Results — the same renderers
// `spmwcet serve` uses for its "output" fields, so serve responses diff
// clean against batch CLI output by construction.
//
//   spmwcet list
//   spmwcet run <benchmark> [--spm BYTES | --cache BYTES [--assoc N]
//                            [--icache] [--persistence]]
//   spmwcet sweep <benchmark>|all [--jobs N] [--csv] [--no-artifact-cache]
//       — with no setup flag: the full both-setup evaluation (every size,
//         Figure-4/5 ratio tables, Table-2 summary); `all` covers the
//         whole paper, a benchmark name just that workload.
//   spmwcet sweep <benchmark>|all --spm|--cache [--persistence]
//                            [--wcet-alloc] [--csv] [--jobs N]
//   spmwcet serve [--jobs N]
//       — resident mode: newline-delimited JSON requests on stdin, one
//         response per line on stdout (see api/wire.h for the schema);
//         lowering, profiling and responses are amortized across requests.
//   spmwcet serve --socket PATH | --tcp PORT [--max-inflight N]
//               [--max-queue-wait MS] [--idle-timeout MS] [--drain MS]
//       — networked resident mode: same protocol over a unix-domain
//         socket and/or loopback TCP (PORT 0 picks an ephemeral port,
//         logged to stderr). Connections are served concurrently by one
//         shared engine. --max-queue-wait sheds requests that queue past
//         it ("overloaded"), --idle-timeout reaps wedged sessions, and the
//         first SIGINT/SIGTERM drains in-flight pipelined requests for up
//         to --drain ms (default 5000) before closing — a second signal
//         forces an immediate stop.
//   spmwcet serve --bench [--repeat N] [--jobs N]
//       — measures warm-vs-cold request latency on a built-in script.
//   spmwcet serve --bench --clients N [--requests R] [--json FILE]
//       — multi-client saturation: aggregate requests/second over a unix
//         socket at 1, 2, 4, … N concurrent clients on a warm engine.
//   spmwcet disasm <benchmark> [function]
//   spmwcet annotations <benchmark> [--spm BYTES]
//   spmwcet simbench [--legacy-sim | --no-block-tier] [--repeat N]
//                    [--spm BYTES] [--json FILE]
//       — simulator throughput (instructions/second) over the simbench set
//         (paper workloads + generated members), best-of-N, for the
//         no-assignment baseline and an SPM-placed configuration;
//         --legacy-sim measures the pre-overhaul simulator,
//         --no-block-tier the per-instruction fast path the translation
//         tier is gated against.
//   spmwcet wcetbench [--legacy-wcet] [--no-incremental] [--repeat N]
//                     [--json FILE]
//       — WCET-analyzer throughput (analyses/second) over the paper
//         workloads on sweep-shaped work (8 sizes per setup, MUST-only and
//         persistence cache passes), best-of-N; --legacy-wcet measures the
//         seed analyzer as the baseline, --no-incremental the from-scratch
//         IPET + map-persistence fast path. The same flags on `run`/`sweep`
//         select those analyzers inside the pipeline (field-identical
//         output, slower).
//   spmwcet corpus <shape> [--count N] [--base N] [--spm [BYTES] |
//                  --cache [BYTES]] [--jobs N] [--csv] [--json FILE]
//       — generated-workload corpus: runs the seed range
//         [base, base+count) of one shape as a single batch and prints
//         per-size min/mean/max WCET, ratio and energy plus corpus-wide
//         cycle totals. A bare --spm/--cache picks the setup over the
//         paper size ladder; a byte value restricts the sweep to that one
//         size.
//   spmwcet corpusbench [<shape>] [--count N] [--base N] [--repeat N]
//                       [--json FILE]
//       — corpus-pipeline throughput (cold generation + analysis vs warm
//         artifact-cached re-analysis), best-of-N; --json writes
//         BENCH_corpus.json.
//
// Benchmarks: g721, adpcm, multisort, bubble — plus generated workloads,
// addressable anywhere a benchmark name is accepted as
// "gen:<shape>:<seed>" (shapes: tiny, mixed, loopy, callheavy, branchy),
// e.g. `spmwcet run gen:loopy:42 --spm 1024`. Same seed + shape is the
// same program on every platform.
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "alloc/allocator.h"
#include "api/engine.h"
#include "api/render.h"
#include "api/serve.h"
#include "api/serve_socket.h"
#include "link/layout.h"
#include "sim/simulator.h"
#include "wcet/analyzer.h"
#include "wcet/dump.h"
#include "workloads/generated.h"

namespace {

using namespace spmwcet;

int usage() {
  std::cerr << "usage:\n"
            << "  spmwcet list\n"
            << "  spmwcet run <bench> [--spm BYTES | --cache BYTES"
               " [--assoc N] [--icache] [--persistence]]"
               " [--trace] [--blocks]\n"
            << "  spmwcet sweep <bench>|all [--jobs N] [--csv]"
               " [--no-artifact-cache]   # both setups + ratio tables\n"
            << "  spmwcet sweep <bench>|all --spm|--cache [--persistence]"
               " [--wcet-alloc] [--csv] [--jobs N]\n"
            << "  spmwcet serve [--jobs N] [--bench [--repeat N]]\n"
            << "  spmwcet serve --socket PATH | --tcp PORT"
               " [--max-inflight N] [--max-queue-wait MS]\n"
               "      [--idle-timeout MS] [--drain MS]"
               "   # SIGTERM drains, SIGTERM x2 forces\n"
            << "  spmwcet serve --bench --clients N [--requests R]"
               " [--json FILE]\n"
            << "  spmwcet disasm <bench> [function]\n"
            << "  spmwcet annotations <bench> [--spm BYTES]\n"
            << "  spmwcet simbench [--legacy-sim | --no-block-tier]"
               " [--repeat N] [--spm BYTES] [--json FILE]\n"
            << "  spmwcet wcetbench [--legacy-wcet] [--no-incremental]"
               " [--repeat N] [--json FILE]\n"
            << "  spmwcet corpus <shape> [--count N] [--base N]"
               " [--spm [BYTES] | --cache [BYTES]]\n"
               "      [--jobs N] [--csv] [--json FILE]\n"
            << "  spmwcet corpusbench [<shape>] [--count N] [--base N]"
               " [--repeat N] [--json FILE]\n"
            << "benchmarks:";
  // The same vocabulary the Engine API validates requests against.
  for (const std::string& name : workloads::all_benchmark_names())
    std::cerr << " " << name;
  std::cerr << "\ngenerated: gen:<shape>:<seed> with shape one of";
  for (const std::string& name : workloads::gen_shape_names())
    std::cerr << " " << name;
  std::cerr << "\n";
  return 2;
}

/// Workloads come from the memoized registry, so diagnostic commands that
/// touch the same benchmark repeatedly lower the MiniC program once per
/// process. (Engine-served commands resolve through the same registry.)
std::shared_ptr<const workloads::WorkloadInfo>
make_workload(const std::string& name) {
  return workloads::WorkloadRegistry::instance().benchmark(name);
}

struct Args {
  std::vector<std::string> positional;
  // Flag presence and value are tracked separately: `sweep` uses --spm /
  // --cache as bare mode flags, `run` requires a byte value, and
  // `simbench --spm 0` must be distinguishable from a bare --spm.
  bool spm_flag = false;
  bool cache_flag = false;
  std::optional<uint32_t> spm;   ///< numeric value, when one was given
  std::optional<uint32_t> cache;
  uint32_t assoc = 1;
  bool icache = false;
  bool persistence = false;
  bool wcet_alloc = false;
  bool csv = false;
  bool trace = false;
  bool blocks = false;
  bool no_artifact_cache = false;
  bool legacy_sim = false;
  bool legacy_wcet = false;
  bool no_incremental = false;
  bool no_block_tier = false;
  bool bench = false;
  uint32_t repeat = 5;
  std::string json;
  uint32_t jobs = 1;
  std::string socket;               ///< serve: unix-domain listener path
  std::optional<uint16_t> tcp;      ///< serve: loopback-TCP port (0=ephemeral)
  uint32_t max_inflight = 0;        ///< serve: admission bound (0=hw threads)
  uint32_t max_queue_wait = 0;      ///< serve: shed after this queue wait (0=off)
  uint32_t idle_timeout = 0;        ///< serve: idle-session reap (0=off)
  uint32_t drain = 5000;            ///< serve: SIGTERM drain budget [ms]
  uint32_t clients = 0;             ///< serve --bench: saturation client count
  uint32_t requests = 1000;         ///< serve --bench: requests per client
  uint32_t count = 100;             ///< corpus: seed-range length
  uint32_t base = 1;                ///< corpus: first seed

  api::ExperimentOptions options() const {
    api::ExperimentOptions opts;
    opts.cache_assoc = assoc;
    opts.cache_unified = !icache;
    opts.with_persistence = persistence;
    opts.wcet_driven_alloc = wcet_alloc;
    opts.use_artifact_cache = !no_artifact_cache;
    opts.legacy_wcet = legacy_wcet;
    opts.incremental = !no_incremental;
    opts.block_tier = !no_block_tier;
    return opts;
  }
  api::EngineOptions engine_options() const {
    api::EngineOptions opts;
    opts.jobs = jobs;
    opts.max_inflight = max_inflight;
    opts.max_queue_wait_ms = max_queue_wait;
    return opts;
  }
};

/// Full-string uint32 parse; rejects overflow instead of wrapping mod 2^32
/// (a wrapped size would silently bypass the Engine's range validation).
uint32_t parse_u32(const std::string& flag, const std::string& s) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0')
    throw Error("expected a number after " + flag + ", got '" + s + "'");
  if (errno != 0 || v > UINT32_MAX)
    throw Error("value after " + flag + " out of range: " + s);
  return static_cast<uint32_t>(v);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_u32 = [&]() -> uint32_t {
      if (i + 1 >= argc) throw Error("missing value after " + arg);
      return parse_u32(arg, argv[++i]);
    };
    // `sweep` uses --spm/--cache as mode flags with no size, `run` gives a
    // size; consume a value only when the next argument is numeric.
    auto maybe_u32 = [&]() -> std::optional<uint32_t> {
      if (i + 1 >= argc) return std::nullopt;
      const std::string peek = argv[i + 1];
      if (peek.empty() ||
          peek.find_first_not_of("0123456789") != std::string::npos)
        return std::nullopt;
      return parse_u32(arg, argv[++i]);
    };
    if (arg == "--spm") {
      a.spm_flag = true;
      a.spm = maybe_u32();
    } else if (arg == "--cache") {
      a.cache_flag = true;
      a.cache = maybe_u32();
    }
    else if (arg == "--assoc")
      a.assoc = next_u32();
    else if (arg == "--icache")
      a.icache = true;
    else if (arg == "--persistence")
      a.persistence = true;
    else if (arg == "--wcet-alloc")
      a.wcet_alloc = true;
    else if (arg == "--csv")
      a.csv = true;
    else if (arg == "--jobs")
      a.jobs = next_u32();
    else if (arg == "--no-artifact-cache")
      a.no_artifact_cache = true;
    else if (arg == "--legacy-sim")
      a.legacy_sim = true;
    else if (arg == "--legacy-wcet")
      a.legacy_wcet = true;
    else if (arg == "--no-incremental")
      a.no_incremental = true;
    else if (arg == "--no-block-tier")
      a.no_block_tier = true;
    else if (arg == "--bench")
      a.bench = true;
    else if (arg == "--repeat")
      a.repeat = next_u32();
    else if (arg == "--socket") {
      if (i + 1 >= argc) throw Error("missing value after --socket");
      a.socket = argv[++i];
    } else if (arg == "--tcp") {
      const uint32_t port = next_u32();
      if (port > 65535)
        throw Error("--tcp port out of range: " + std::to_string(port));
      a.tcp = static_cast<uint16_t>(port);
    } else if (arg == "--max-inflight")
      a.max_inflight = next_u32();
    else if (arg == "--max-queue-wait")
      a.max_queue_wait = next_u32();
    else if (arg == "--idle-timeout")
      a.idle_timeout = next_u32();
    else if (arg == "--drain")
      a.drain = next_u32();
    else if (arg == "--clients")
      a.clients = next_u32();
    else if (arg == "--requests")
      a.requests = next_u32();
    else if (arg == "--count")
      a.count = next_u32();
    else if (arg == "--base")
      a.base = next_u32();
    else if (arg == "--json") {
      if (i + 1 >= argc) throw Error("missing value after --json");
      a.json = argv[++i];
    }
    else if (arg == "--trace")
      a.trace = true;
    else if (arg == "--blocks")
      a.blocks = true;
    else if (arg.rfind("--", 0) == 0)
      throw Error("unknown option: " + arg);
    else
      a.positional.push_back(arg);
  }
  return a;
}

/// Unwraps a Result, mapping the structured ApiError onto the CLI's
/// "error: <code>: <message> (<context>)" + exit-1 convention.
template <typename T>
const T& unwrap(const api::Result<T>& result) {
  return result.value_or_throw();
}

int cmd_list() {
  TablePrinter table({"name", "description", "functions", "globals"});
  for (const auto& wl : workloads::cached_paper_benchmarks())
    table.add_row({wl->name, wl->description,
                   TablePrinter::fmt(
                       static_cast<uint64_t>(wl->module.functions.size())),
                   TablePrinter::fmt(
                       static_cast<uint64_t>(wl->module.globals.size()))});
  table.render(std::cout);
  return 0;
}

int cmd_run(const Args& a) {
  // Unlike `sweep`, `run` measures one point, so a nonzero capacity is
  // required.
  if ((a.spm_flag && a.spm.value_or(0) == 0) ||
      (a.cache_flag && a.cache.value_or(0) == 0))
    throw Error("run requires a size: --spm BYTES or --cache BYTES");

  if (a.spm_flag || a.cache_flag) {
    const harness::MemSetup setup =
        a.spm_flag ? harness::MemSetup::Scratchpad : harness::MemSetup::Cache;
    api::Engine engine(a.engine_options());
    const auto request = api::PointRequest::make(
        a.positional[1], setup, a.spm_flag ? *a.spm : *a.cache, a.options());
    api::render_point(unwrap(engine.point(unwrap(request))), std::cout);
    return 0;
  }

  // Plain main-memory configuration with a full report — a developer
  // diagnostic (like disasm/annotations) that stays below the Engine API.
  const auto& wl = *make_workload(a.positional[1]);
  const link::Image img = link::link_program(wl.module, {}, {});
  sim::SimConfig scfg;
  if (a.trace) scfg.trace = &std::cerr;
  const auto run = sim::simulate(img, scfg);
  const auto report = wcet::analyze_wcet(img, {});
  std::cout << wl.name << " (main memory only):\n"
            << "  ACET " << run.cycles << " cycles, " << run.instructions
            << " instructions\n\n";
  wcet::render_report(report, std::cout, a.blocks);
  return 0;
}

int cmd_sweep(const Args& a) {
  const std::vector<std::string> names =
      a.positional[1] == "all"
          ? workloads::paper_benchmark_names()
          : std::vector<std::string>{a.positional[1]};
  api::Engine engine(a.engine_options());

  // `sweep` with no setup flag runs the full both-setup evaluation — the
  // whole paper for `all`, or one benchmark — as one batch, rendered with
  // the Table-2 summary and the Figure-4/5 ratio tables.
  if (!a.spm_flag && !a.cache_flag) {
    const auto request = api::EvalRequest::make(names, {}, a.options());
    api::render_eval(unwrap(engine.eval(unwrap(request))), std::cout, a.csv);
    return 0;
  }

  const harness::MemSetup setup =
      a.spm_flag ? harness::MemSetup::Scratchpad : harness::MemSetup::Cache;
  const auto request = api::SweepRequest::make(names, setup, {}, a.options());
  api::render_sweep(unwrap(engine.sweep(unwrap(request))), std::cout, a.csv);
  return 0;
}

int cmd_simbench(const Args& a) {
  if (a.positional.size() > 1)
    throw Error("simbench always measures the full simbench set; unexpected "
                "argument: " +
                a.positional[1]);
  // --spm without a value keeps the default SPM-placed capacity (4 KiB);
  // an explicit --spm 0 measures the no-assignment baseline only.
  const uint32_t spm_bytes = a.spm.value_or(4096);
  const auto request = api::SimBenchRequest::make(a.repeat, a.legacy_sim,
                                                  spm_bytes, !a.no_block_tier);
  api::Engine engine(a.engine_options());
  const api::SimBenchResult result = unwrap(engine.simbench(unwrap(request)));
  api::render_simbench(result, std::cout);
  if (!a.json.empty()) {
    std::ofstream out(a.json);
    if (!out) throw Error("cannot write " + a.json);
    api::render_simbench_json(result, out);
  }
  return 0;
}

int cmd_wcetbench(const Args& a) {
  if (a.positional.size() > 1)
    throw Error("wcetbench always measures the full paper set; unexpected "
                "argument: " +
                a.positional[1]);
  const auto request =
      api::WcetBenchRequest::make(a.repeat, a.legacy_wcet, !a.no_incremental);
  api::Engine engine(a.engine_options());
  const api::WcetBenchResult result =
      unwrap(engine.wcetbench(unwrap(request)));
  api::render_wcetbench(result, std::cout);
  if (!a.json.empty()) {
    std::ofstream out(a.json);
    if (!out) throw Error("cannot write " + a.json);
    api::render_wcetbench_json(result, out);
  }
  return 0;
}

int cmd_corpus(const Args& a) {
  const harness::MemSetup setup =
      a.cache_flag ? harness::MemSetup::Cache : harness::MemSetup::Scratchpad;
  // A bare --spm/--cache selects the setup over the paper size ladder; an
  // explicit byte value narrows the corpus to that single size.
  std::vector<uint32_t> sizes;
  if (a.spm_flag && a.spm.has_value()) sizes.push_back(*a.spm);
  if (a.cache_flag && a.cache.has_value()) sizes.push_back(*a.cache);
  const auto request = api::CorpusRequest::make(
      a.positional[1], a.base, a.count, setup, sizes, a.options());
  api::Engine engine(a.engine_options());
  const api::CorpusResult result = unwrap(engine.corpus(unwrap(request)));
  api::render_corpus(result, std::cout, a.csv);
  if (!a.json.empty()) {
    std::ofstream out(a.json);
    if (!out) throw Error("cannot write " + a.json);
    api::render_corpus_json(result, out);
  }
  return 0;
}

int cmd_corpusbench(const Args& a) {
  const std::string shape =
      a.positional.size() > 1 ? a.positional[1] : "mixed";
  if (a.repeat < 2 || a.repeat > api::kMaxRepeat)
    throw Error("corpusbench: --repeat " + std::to_string(a.repeat) +
                " outside the supported range [2, " +
                std::to_string(api::kMaxRepeat) + "]");
  if (a.json.empty())
    return api::run_corpus_bench(a.engine_options(), shape, a.base, a.count,
                                 a.repeat, std::cout);
  std::ofstream out(a.json);
  if (!out) throw Error("cannot write " + a.json);
  return api::run_corpus_bench(a.engine_options(), shape, a.base, a.count,
                               a.repeat, std::cout, &out);
}

// SIGINT/SIGTERM write one byte to the running SocketServer's stop pipe
// (the only async-signal-safe shutdown path); the main thread parked in
// wait() then performs the actual stop.
volatile std::sig_atomic_t g_serve_stop_fd = -1;

void serve_signal_handler(int) {
  const int fd = g_serve_stop_fd;
  if (fd < 0) return;
  const char byte = 1;
  (void)!::write(fd, &byte, 1);
}

int cmd_serve(const Args& a) {
  if (a.bench) {
    // The serve benches consume --repeat/--requests directly (no Request
    // factory in front of them), so range-check here: a repeat of 0 would
    // "measure" zero iterations and report vacuous timings under exit 0.
    if (a.repeat == 0 || a.repeat > api::kMaxRepeat)
      throw Error("serve --bench: --repeat " + std::to_string(a.repeat) +
                  " outside the supported range [1, " +
                  std::to_string(api::kMaxRepeat) + "]");
    if (a.clients > 0 && a.requests == 0)
      throw Error("serve --bench: --requests must be at least 1");
    if (a.clients > 0)
      return api::run_serve_saturation_bench(a.engine_options(), a.clients,
                                             a.requests, std::cout, a.json);
    return api::run_serve_bench(a.engine_options(), a.repeat, std::cout);
  }

  if (!a.socket.empty() || a.tcp.has_value()) {
    api::Engine engine(a.engine_options());
    api::SocketServeOptions sopts;
    sopts.unix_path = a.socket;
    sopts.tcp_port = a.tcp;
    sopts.idle_timeout_ms = a.idle_timeout;
    sopts.drain_deadline_ms = a.drain;
    sopts.log = &std::cerr;
    api::SocketServer server(engine, sopts);
    if (!a.socket.empty())
      std::cerr << "serve: listening on unix socket " << a.socket << "\n";
    if (a.tcp.has_value())
      std::cerr << "serve: listening on tcp 127.0.0.1:" << server.tcp_port()
                << "\n";
    g_serve_stop_fd = server.stop_fd();
    std::signal(SIGINT, serve_signal_handler);
    std::signal(SIGTERM, serve_signal_handler);
    server.wait();
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_serve_stop_fd = -1;
    return 0;
  }

  api::Engine engine(a.engine_options());
  api::serve_loop(engine, std::cin, std::cout, &std::cerr);
  return 0;
}

int cmd_disasm(const Args& a) {
  const auto& wl = *make_workload(a.positional[1]);
  const link::Image img = link::link_program(wl.module, {}, {});
  if (a.positional.size() > 2)
    wcet::disassemble_function(img, a.positional[2], std::cout);
  else
    wcet::disassemble_program(img, std::cout);
  return 0;
}

int cmd_annotations(const Args& a) {
  const auto& wl = *make_workload(a.positional[1]);
  link::LinkOptions opts;
  link::SpmAssignment assignment;
  if (a.spm_flag) {
    opts.spm_size = a.spm.value_or(0);
    // Use the paper's allocation flow to pick the scratchpad contents.
    const link::Image profile_img = link::link_program(wl.module, opts, {});
    sim::SimConfig pcfg;
    pcfg.collect_profile = true;
    sim::Simulator profiler(profile_img, pcfg);
    const auto run = profiler.run();
    assignment =
        alloc::allocate_energy_optimal(wl.module, run.profile,
                                       a.spm.value_or(0))
            .assignment;
  }
  const link::Image img = link::link_program(wl.module, opts, assignment);
  img.regions.dump_annotations(std::cout);
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    if (args.positional.empty()) return usage();
    const std::string& cmd = args.positional[0];
    if (cmd == "list") return cmd_list();
    if (cmd == "simbench") return cmd_simbench(args);
    if (cmd == "wcetbench") return cmd_wcetbench(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "corpusbench") return cmd_corpusbench(args);
    if (args.positional.size() < 2) return usage();
    if (cmd == "corpus") return cmd_corpus(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "sweep") return cmd_sweep(args);
    if (cmd == "disasm") return cmd_disasm(args);
    if (cmd == "annotations") return cmd_annotations(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
